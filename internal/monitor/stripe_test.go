package monitor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aide/internal/graph"
	"aide/internal/vm"
)

// feedWorkload drives a fixed synthetic workload through the monitor from
// `sources` goroutines, partitioned round-robin so every interleaving
// consumes the same multiset of events.
func feedWorkload(m *Monitor, classes, events, sources int) {
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < events; i += sources {
				a := fmt.Sprintf("C%03d", i%classes)
				b := fmt.Sprintf("C%03d", (i*7+1)%classes)
				switch i % 5 {
				case 0:
					m.OnInvoke(a, b, "m", vm.ObjectID(i), int64(i%256), 16, time.Microsecond, false, false)
				case 1:
					m.OnAccess(a, b, vm.ObjectID(i), int64(i%128))
				case 2:
					m.OnCreate(a, vm.ObjectID(i), 64)
				case 3:
					m.OnDelete(a, vm.ObjectID(i), 32)
				case 4:
					m.OnFieldAccess(a, "f", 8)
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestStripedIngestionMatchesSerial: the same workload fed serially and
// through 8 concurrent sources must merge to identical graphs — integer
// shard deltas commute, so ingestion interleaving cannot leak into the
// partitioner's input.
func TestStripedIngestionMatchesSerial(t *testing.T) {
	const classes, events = 40, 10000
	serial := New(nil)
	feedWorkload(serial, classes, events, 1)
	striped := New(nil, WithShards(16))
	feedWorkload(striped, classes, events, 8)

	gs, gp := serial.Live(), striped.Live()
	if gs.Len() != gp.Len() {
		t.Fatalf("nodes: %d vs %d", gs.Len(), gp.Len())
	}
	// Interning order (and so NodeID assignment) is racy under concurrent
	// sources; compare edges by class-name pair, the stable identity.
	type pair struct{ a, b string }
	name := func(g *graph.Graph, id graph.NodeID) string { return g.Node(id).Name }
	canon := func(a, b string) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	got := map[pair]*graph.Edge{}
	gp.EdgesFunc(func(e *graph.Edge) { got[canon(name(gp, e.A), name(gp, e.B))] = e })
	gs.EdgesFunc(func(e *graph.Edge) {
		o := got[canon(name(gs, e.A), name(gs, e.B))]
		if o == nil || o.Invocations != e.Invocations || o.Accesses != e.Accesses || o.Bytes != e.Bytes {
			t.Errorf("edge (%d,%d): serial=%+v striped=%v", e.A, e.B, e, o)
		}
	})
	for _, n := range gs.Nodes() {
		o, ok := gp.Lookup(n.Name)
		if !ok || o.Memory != n.Memory || o.LiveObjects != n.LiveObjects || o.TotalObjects != n.TotalObjects {
			t.Errorf("node %s: serial=%+v striped=%+v", n.Name, n, o)
		}
	}

	si, sa, sc, sd, _ := serial.Counts()
	pi, pa, pc, pd, _ := striped.Counts()
	if si != pi || sa != pa || sc != pc || sd != pd {
		t.Fatalf("counts diverge: serial=%d/%d/%d/%d striped=%d/%d/%d/%d", si, sa, sc, sd, pi, pa, pc, pd)
	}
	if serial.FieldHeat("C000", "f") != striped.FieldHeat("C000", "f") {
		t.Fatal("field heat diverges")
	}
}

// TestConcurrentSnapshotsDuringIngestion races Graph/Delta/Live/FieldHeat
// snapshots against 8 ingestion sources; run under -race this is the
// stripe-safety gate.
func TestConcurrentSnapshotsDuringIngestion(t *testing.T) {
	m := New(nil, WithDecay(1e6))
	m.OnGCListener(func(free, capacity int64, freed bool) {})
	done := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(2)
	go func() {
		defer snaps.Done()
		var epoch int64
		for {
			select {
			case <-done:
				return
			default:
			}
			d := m.Delta(epoch)
			epoch = d.Epoch
		}
	}()
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			g := m.Graph()
			_ = g.Len()
			m.FieldHeat("C001", "f")
			m.OnGC(1<<20, 1<<24, false)
		}
	}()
	feedWorkload(m, 25, 20000, 8)
	close(done)
	snaps.Wait()

	// After the dust settles the final flush must account for every event.
	inv, acc, creates, deletes, _ := m.Counts()
	g := m.Live()
	var einv, eacc int64
	g.EdgesFunc(func(e *graph.Edge) { einv += e.Invocations; eacc += e.Accesses })
	var total, live int64
	for _, n := range g.Nodes() {
		total += n.TotalObjects
		live += n.LiveObjects
	}
	if total != creates || live != creates-deletes {
		t.Fatalf("object accounting: total=%d creates=%d live=%d deletes=%d", total, creates, live, deletes)
	}
	// Self-edges are dropped by design; cross-class pairs here never
	// alias (i%classes vs (i*7+1)%classes collide only when 6i+1 ≡ 0 mod
	// classes, impossible mod 25 — 6i+1 is never divisible by 5).
	if einv != inv || eacc != acc {
		t.Fatalf("edge accounting: einv=%d inv=%d eacc=%d acc=%d", einv, inv, eacc, acc)
	}
}

// TestDeltaPullLoop: successive Delta pulls across ingestion windows sum
// to the same totals as one full snapshot — the single-consumer contract
// the incremental partitioner relies on.
func TestDeltaPullLoop(t *testing.T) {
	m := New(nil, WithShards(4))
	var epoch int64
	sum := map[graph.EdgeKey]int64{}
	for round := 0; round < 5; round++ {
		feedWorkload(m, 10, 2000, 4)
		d := m.Delta(epoch)
		if d.Full {
			t.Fatalf("round %d: unexpected full resync", round)
		}
		epoch = d.Epoch
		for _, e := range d.Edges {
			// Deltas carry absolute counters for changed edges; keep the
			// latest value per key.
			sum[graph.EdgeKey{A: e.A, B: e.B}] = e.Bytes
		}
	}
	g := m.Live()
	n := 0
	g.EdgesFunc(func(e *graph.Edge) {
		n++
		if sum[graph.EdgeKey{A: e.A, B: e.B}] != e.Bytes {
			t.Errorf("edge (%d,%d): delta saw %d, live has %d", e.A, e.B, sum[graph.EdgeKey{A: e.A, B: e.B}], e.Bytes)
		}
	})
	if n != len(sum) {
		t.Fatalf("delta stream missed edges: saw %d, live %d", len(sum), n)
	}
}

// TestGCListenerNoCopyPerEvent: listeners registered once keep firing and
// registration during a storm of GC events stays race-free (COW swap).
func TestGCListenerCOW(t *testing.T) {
	m := New(nil)
	var mu sync.Mutex
	hits := 0
	m.OnGCListener(func(free, capacity int64, freed bool) {
		mu.Lock()
		hits++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.OnGC(1024, 4096, i%2 == 0)
			}
		}()
	}
	// Register more listeners mid-storm.
	for i := 0; i < 8; i++ {
		m.OnGCListener(func(free, capacity int64, freed bool) {})
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if hits != 2000 {
		t.Fatalf("first listener fired %d times, want 2000", hits)
	}
}

// BenchmarkIngestion8Sources measures striped vs single-shard ingestion
// under 8 concurrent event sources (the contention axis of the partition
// benchmark).
func BenchmarkIngestion8Sources(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := New(nil, WithShards(shards))
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					a := fmt.Sprintf("C%03d", i%64)
					c := fmt.Sprintf("C%03d", (i*7+1)%64)
					m.OnInvoke(a, c, "m", vm.ObjectID(i), 64, 16, 0, false, false)
					i++
				}
			})
		})
	}
}
