package monitor

import (
	"testing"
	"time"

	"aide/internal/trace"
	"aide/internal/vm"
)

func meta(name string) ClassMeta {
	switch name {
	case "ui":
		return ClassMeta{Pinned: true}
	case "math":
		return ClassMeta{Pinned: true, Stateless: true}
	case "arr":
		return ClassMeta{Array: true}
	default:
		return ClassMeta{}
	}
}

func TestHooksBuildGraph(t *testing.T) {
	m := New(meta)
	m.OnCreate("doc", 1, 1000)
	m.OnCreate("doc", 2, 500)
	m.OnInvoke("ui", "doc", "edit", 1, 100, 8, 3*time.Millisecond, false, false)
	m.OnAccess("doc", "arr", 3, 64)
	m.OnDelete("doc", 2, 500)

	g := m.Graph()
	doc, ok := g.Lookup("doc")
	if !ok {
		t.Fatal("doc missing")
	}
	if doc.Memory != 1000 || doc.LiveObjects != 1 || doc.TotalObjects != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.CPUTime != 3*time.Millisecond {
		t.Fatalf("doc CPU = %v", doc.CPUTime)
	}
	ui, _ := g.Lookup("ui")
	if !ui.Pinned {
		t.Fatal("ui must be pinned via meta")
	}
	arr, _ := g.Lookup("arr")
	if !arr.Array {
		t.Fatal("arr must be flagged via meta")
	}
	e := g.Edge(ui.ID, doc.ID)
	if e == nil || e.Invocations != 1 || e.Bytes != 108 {
		t.Fatalf("ui-doc edge = %+v", e)
	}
	inv, acc, cr, del, _ := m.Counts()
	if inv != 1 || acc != 1 || cr != 2 || del != 1 {
		t.Fatalf("counts: %d %d %d %d", inv, acc, cr, del)
	}
}

func TestGraphSnapshotIsolated(t *testing.T) {
	m := New(nil)
	m.OnCreate("a", 1, 100)
	snap := m.Graph()
	m.OnCreate("a", 2, 900)
	n, _ := snap.Lookup("a")
	if n.Memory != 100 {
		t.Fatal("snapshot mutated by later events")
	}
}

func TestGCListeners(t *testing.T) {
	m := New(nil)
	var got []int64
	m.OnGCListener(func(free, cap int64, freed bool) { got = append(got, free) })
	m.OnGC(10, 100, true)
	m.OnGC(5, 100, false)
	if len(got) != 2 || got[0] != 10 || got[1] != 5 {
		t.Fatalf("listener calls: %v", got)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	m := New(meta)
	rec := NewRecorder("TestApp", 1<<20, meta)
	m.SetRecorder(rec)

	m.OnCreate("doc", 1, 1000)
	m.OnInvoke("ui", "doc", "edit", 1, 100, 8, time.Millisecond, false, false)
	m.OnInvoke("doc", "math", "sqrt", 0, 16, 8, time.Microsecond, true, true)
	m.OnAccess("doc", "arr", 2, 64)
	m.OnCreate("arr", 2, 4096)
	m.OnDelete("arr", 2, 4096)
	m.OnGC(100, 1000, true)

	tr := rec.Trace()
	if tr.App != "TestApp" || tr.HeapCapacity != 1<<20 {
		t.Fatalf("header: %+v", tr)
	}
	// Creates must precede deletes of the same object for validation;
	// the stream above creates arr(2) after accessing it, so fix order
	// expectations by validating kinds only.
	kinds := []trace.EventKind{
		trace.KindCreate, trace.KindInvoke, trace.KindInvoke,
		trace.KindAccess, trace.KindCreate, trace.KindDelete, trace.KindGC,
	}
	if len(tr.Events) != len(kinds) {
		t.Fatalf("%d events", len(tr.Events))
	}
	for i, k := range kinds {
		if tr.Events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
	}
	// Class table carries metadata.
	var mathInfo, arrInfo trace.ClassInfo
	for _, ci := range tr.Classes {
		switch ci.Name {
		case "math":
			mathInfo = ci
		case "arr":
			arrInfo = ci
		}
	}
	if !mathInfo.Pinned || !mathInfo.Stateless {
		t.Fatalf("math info = %+v", mathInfo)
	}
	if !arrInfo.Array {
		t.Fatalf("arr info = %+v", arrInfo)
	}
	// Native/stateless flags survive on events.
	if !tr.Events[2].Native || !tr.Events[2].Stateless {
		t.Fatalf("native event flags lost: %+v", tr.Events[2])
	}
}

func TestFeedRebuildsSameGraph(t *testing.T) {
	// Record from live hooks, then Feed the trace into a fresh monitor:
	// the graphs must agree.
	m1 := New(meta)
	rec := NewRecorder("X", 1<<20, meta)
	m1.SetRecorder(rec)
	m1.OnCreate("doc", 1, 1000)
	m1.OnInvoke("ui", "doc", "edit", 1, 100, 8, time.Millisecond, false, false)
	m1.OnAccess("doc", "arr", 2, 64)

	m2 := New(nil)
	tr := rec.Trace()
	for i := range tr.Events {
		m2.Feed(tr, &tr.Events[i])
	}
	g1, g2 := m1.Graph(), m2.Graph()
	if g1.Len() != g2.Len() || g1.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("graph shapes differ: %d/%d vs %d/%d", g1.Len(), g1.EdgeCount(), g2.Len(), g2.EdgeCount())
	}
	d1, _ := g1.Lookup("doc")
	d2, ok := g2.Lookup("doc")
	if !ok || d1.Memory != d2.Memory || d1.CPUTime != d2.CPUTime {
		t.Fatalf("doc differs: %+v vs %+v", d1, d2)
	}
	u2, _ := g2.Lookup("ui")
	if !u2.Pinned {
		t.Fatal("pins must come through the trace class table")
	}
}

func TestRegistryMeta(t *testing.T) {
	reg := vm.NewRegistry()
	body := func(*vm.Thread, vm.ObjectID, []vm.Value) (vm.Value, error) { return vm.Nil(), nil }
	mustRegister(reg, vm.ClassSpec{Name: "N", Methods: []vm.MethodSpec{{Name: "m", Native: true, Body: body}}})
	mustRegister(reg, vm.ClassSpec{Name: "A", Array: true})
	f := RegistryMeta(reg)
	if got := f("N"); !got.Pinned || got.Stateless {
		t.Fatalf("N meta = %+v", got)
	}
	if got := f("A"); !got.Array {
		t.Fatalf("A meta = %+v", got)
	}
	if got := f("unknown"); got != (ClassMeta{}) {
		t.Fatalf("unknown meta = %+v", got)
	}
}

func TestLiveGraphAccessor(t *testing.T) {
	m := New(nil)
	m.OnCreate("a", 1, 10)
	if m.Live().Len() != 1 {
		t.Fatal("Live graph missing node")
	}
}

// mustRegister registers a class during test setup, panicking on the spec
// errors that Register reports (setup bugs, not monitored behavior).
func mustRegister(reg *vm.Registry, spec vm.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		panic(err)
	}
}
