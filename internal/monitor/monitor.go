// Package monitor implements AIDE's execution and resource monitoring
// module (paper §3.4).
//
// It consumes the VM's instrumentation callbacks (method invocations, data
// field accesses, object creation and deletion, garbage-collection
// reports), aggregates object-level information to class level, and
// maintains the weighted execution graph that the partitioning module
// consumes. The same aggregation code also replays recorded traces, which
// is how the emulator drives the shared modules (paper §4).
package monitor

import (
	"sync"
	"time"

	"aide/internal/graph"
	"aide/internal/trace"
	"aide/internal/vm"
)

// ClassMeta is per-class metadata the monitor cannot observe from events
// alone.
type ClassMeta struct {
	// Pinned: the class cannot be offloaded (native methods).
	Pinned bool

	// Array: primitive-array pseudo-class.
	Array bool

	// Stateless: all native methods are stateless/idempotent.
	Stateless bool
}

// ClassMetaFunc supplies class metadata by name.
type ClassMetaFunc func(name string) ClassMeta

// GCListener receives garbage-collection resource reports (the trigger
// policies subscribe here).
type GCListener func(free, capacity int64, freed bool)

// Monitor builds and maintains the execution graph. It implements
// vm.Hooks; install it with VM.SetHooks. All methods are safe for
// concurrent use.
type Monitor struct {
	mu        sync.Mutex
	g         *graph.Graph
	meta      ClassMetaFunc
	listeners []GCListener
	rec       *Recorder

	invocations int64
	accesses    int64
	creates     int64
	deletes     int64
	gcs         int64

	// fieldHeat counts accesses per (class, field) — the signal the lazy
	// state-transfer predictor reads. Allocated on first field event, so
	// monitors driven purely by traces (which carry no field names) pay
	// nothing.
	fieldHeat map[fieldKey]int64
}

// fieldKey identifies one instance field for the heat table.
type fieldKey struct {
	class, field string
}

var (
	_ vm.Hooks      = (*Monitor)(nil)
	_ vm.FieldHooks = (*Monitor)(nil)
)

// New returns a monitor. meta may be nil, in which case no class is
// considered pinned (the emulator supplies metadata from the trace's class
// table instead).
func New(meta ClassMetaFunc) *Monitor {
	return &Monitor{g: graph.New(), meta: meta}
}

// Graph returns a snapshot (deep copy) of the execution graph, suitable
// for handing to the partitioning module while monitoring continues.
func (m *Monitor) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g.Clone()
}

// Live returns the live execution graph without copying. Callers must not
// mutate it and should hold no reference across further execution.
func (m *Monitor) Live() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g
}

// Counts reports how many events of each kind the monitor has consumed.
func (m *Monitor) Counts() (invocations, accesses, creates, deletes, gcs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.invocations, m.accesses, m.creates, m.deletes, m.gcs
}

// OnGCListener subscribes to garbage-collection resource reports.
func (m *Monitor) OnGCListener(f GCListener) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, f)
}

// SetRecorder attaches a trace recorder that mirrors every event (nil
// detaches).
func (m *Monitor) SetRecorder(r *Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = r
}

func (m *Monitor) intern(name string) *graph.Node {
	n, ok := m.g.Lookup(name)
	if ok {
		return n
	}
	n = m.g.Intern(name)
	if m.meta != nil {
		info := m.meta(name)
		n.Pinned, n.Array, n.Stateless = info.Pinned, info.Array, info.Stateless
	}
	return n
}

// OnInvoke implements vm.Hooks.
func (m *Monitor) OnInvoke(caller, callee, method string, obj vm.ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cn := m.intern(callee)
	cn.CPUTime += selfTime
	m.invocations++
	if caller != "" && caller != callee {
		from := m.intern(caller)
		m.g.AddInvocation(from.ID, cn.ID, argBytes+retBytes)
	}
	if m.rec != nil {
		m.rec.invoke(caller, callee, obj, argBytes+retBytes, selfTime, native, stateless)
	}
}

// OnAccess implements vm.Hooks.
func (m *Monitor) OnAccess(from, to string, obj vm.ObjectID, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accesses++
	tn := m.intern(to)
	if from != "" && from != to {
		fn := m.intern(from)
		m.g.AddAccess(fn.ID, tn.ID, bytes)
	}
	if m.rec != nil {
		m.rec.access(from, to, obj, bytes)
	}
}

// OnCreate implements vm.Hooks.
func (m *Monitor) OnCreate(class string, obj vm.ObjectID, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.creates++
	n := m.intern(class)
	m.g.AddObject(n.ID, size)
	if m.rec != nil {
		m.rec.create(class, obj, size)
	}
}

// OnDelete implements vm.Hooks.
func (m *Monitor) OnDelete(class string, obj vm.ObjectID, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deletes++
	n := m.intern(class)
	m.g.RemoveObject(n.ID, size)
	if m.rec != nil {
		m.rec.delete(class, obj, size)
	}
}

// OnGC implements vm.Hooks.
func (m *Monitor) OnGC(free, capacity int64, freed bool) {
	m.mu.Lock()
	m.gcs++
	listeners := make([]GCListener, len(m.listeners))
	copy(listeners, m.listeners)
	if m.rec != nil {
		m.rec.gc(free, capacity, freed)
	}
	m.mu.Unlock()
	for _, f := range listeners {
		f(free, capacity, freed)
	}
}

// OnFieldAccess implements vm.FieldHooks: it heats the (class, field)
// entry every instance-field read or write touches.
func (m *Monitor) OnFieldAccess(class, field string, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fieldHeat == nil {
		m.fieldHeat = make(map[fieldKey]int64)
	}
	m.fieldHeat[fieldKey{class: class, field: field}]++
}

// FieldHeat reports how many accesses the monitor has seen for one field
// (diagnostics and tests).
func (m *Monitor) FieldHeat(class, field string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fieldHeat[fieldKey{class: class, field: field}]
}

// FieldPredictor derives a lazy-migration predictor from the heat table:
// a field is hot (ship eagerly) once it has at least minAccesses recorded
// accesses; colder fields stay behind for on-demand pull. minAccesses < 1
// defaults to 1 — any observed access makes the field hot. The predictor
// reads the live table, so heat accumulated after installation counts.
func (m *Monitor) FieldPredictor(minAccesses int64) vm.FieldPredictor {
	if minAccesses < 1 {
		minAccesses = 1
	}
	return func(class, field string) bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.fieldHeat[fieldKey{class: class, field: field}] >= minAccesses
	}
}

// Feed consumes one trace event, keyed against the trace's class table.
// The emulator uses this to drive the shared monitoring module from a
// recorded trace exactly as the prototype drives it live.
func (m *Monitor) Feed(t *trace.Trace, e *trace.Event) {
	switch e.Kind {
	case trace.KindInvoke:
		caller := ""
		if e.Caller >= 0 && int(e.Caller) < len(t.Classes) {
			caller = t.Classes[e.Caller].Name
		}
		callee := t.Classes[e.Callee].Name
		m.ensureMeta(t, e.Callee)
		if e.Caller >= 0 {
			m.ensureMeta(t, e.Caller)
		}
		m.OnInvoke(caller, callee, "", vm.ObjectID(e.Obj), e.Bytes, 0, e.SelfTime, e.Native, e.Stateless)
	case trace.KindAccess:
		m.ensureMeta(t, e.Caller)
		m.ensureMeta(t, e.Callee)
		m.OnAccess(t.Classes[e.Caller].Name, t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindCreate:
		m.ensureMeta(t, e.Callee)
		m.OnCreate(t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindDelete:
		m.ensureMeta(t, e.Callee)
		m.OnDelete(t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindGC:
		m.OnGC(e.Free, e.Capacity, e.Freed)
	}
}

// ensureMeta pins/flags the node from the trace class table before the
// generic hook interns it without metadata.
func (m *Monitor) ensureMeta(t *trace.Trace, id trace.ClassID) {
	info := t.Class(id)
	if info.Name == "" {
		return
	}
	m.mu.Lock()
	n := m.intern(info.Name)
	n.Pinned = n.Pinned || info.Pinned
	n.Array = n.Array || info.Array
	n.Stateless = n.Stateless || info.Stateless
	m.mu.Unlock()
}

// RegistryMeta adapts a VM class registry into a ClassMetaFunc: classes
// with native methods are pinned (paper §3.3).
func RegistryMeta(r *vm.Registry) ClassMetaFunc {
	return func(name string) ClassMeta {
		c := r.Class(name)
		if c == nil {
			return ClassMeta{}
		}
		return ClassMeta{
			Pinned:    c.Pinned(),
			Array:     c.Array,
			Stateless: c.NativeStateless(),
		}
	}
}
