// Package monitor implements AIDE's execution and resource monitoring
// module (paper §3.4).
//
// It consumes the VM's instrumentation callbacks (method invocations, data
// field accesses, object creation and deletion, garbage-collection
// reports), aggregates object-level information to class level, and
// maintains the weighted execution graph that the partitioning module
// consumes. The same aggregation code also replays recorded traces, which
// is how the emulator drives the shared modules (paper §4).
//
// Ingestion is striped: events land in per-shard delta maps (classes by
// ID, class pairs by pair hash) behind independent mutexes, with a
// lock-free interner resolving class names, so concurrent event sources
// never serialize on one global lock. Shard deltas merge into the base
// graph only when a snapshot is taken (Graph, Delta, Live, Flush) —
// integer merges commute, so the result is independent of shard order and
// bit-identical to serial ingestion. The merged graph tracks a dirty set,
// and Delta hands the partitioner only what changed since its last pull.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/graph"
	"aide/internal/trace"
	"aide/internal/vm"
)

// ClassMeta is per-class metadata the monitor cannot observe from events
// alone.
type ClassMeta struct {
	// Pinned: the class cannot be offloaded (native methods).
	Pinned bool

	// Array: primitive-array pseudo-class.
	Array bool

	// Stateless: all native methods are stateless/idempotent.
	Stateless bool
}

// bits packs the metadata for the lock-free flag fast path.
func (c ClassMeta) bits() uint32 {
	var b uint32
	if c.Pinned {
		b |= 1
	}
	if c.Array {
		b |= 2
	}
	if c.Stateless {
		b |= 4
	}
	return b
}

// ClassMetaFunc supplies class metadata by name.
type ClassMetaFunc func(name string) ClassMeta

// GCListener receives garbage-collection resource reports (the trigger
// policies subscribe here).
type GCListener func(free, capacity int64, freed bool)

// defaultShards is the stripe count; rounded up to a power of two so the
// shard pick is a mask, and sized so 8–16 concurrent event sources rarely
// collide.
const defaultShards = 16

// Option configures a Monitor at construction.
type Option func(*Monitor)

// WithShards sets the ingestion stripe count (rounded up to a power of
// two, minimum 1). One shard serializes every event — the contention
// baseline the partition benchmark compares against.
func WithShards(n int) Option {
	return func(m *Monitor) { m.shardCount = n }
}

// WithDecay enables streaming exponential decay of edge interaction
// weights with the given half-life measured in consumed events (the
// monitor's deterministic event-time clock). Stale interactions then age
// out of HotWeight-based partitioning decisions instead of accumulating
// forever. Decay advances at flush granularity: every event in one flush
// window carries the window-end timestamp, which keeps replays
// bit-identical regardless of ingestion interleaving.
func WithDecay(halfLifeEvents float64) Option {
	return func(m *Monitor) { m.halfLife = halfLifeEvents }
}

// nodeShard stripes per-class lifecycle deltas. The event-kind counters
// live here too, bumped under the shard mutex the event already takes —
// a single shared atomic counter would put every stripe back on one
// cache line and cap throughput at its ping-pong rate.
type nodeShard struct {
	mu    sync.Mutex
	nodes map[graph.NodeID]*nodeDelta
	ctr   counts
	_     [32]byte // keep neighboring shard mutexes off one cache line
}

// counts is the per-shard slice of the monitor's event-kind totals.
type counts struct {
	events, inv, acc, creates, deletes int64
}

func (c *counts) add(o counts) {
	c.events += o.events
	c.inv += o.inv
	c.acc += o.acc
	c.creates += o.creates
	c.deletes += o.deletes
}

// nodeDelta accumulates one class's events since the last flush. mem is
// the net memory delta and peakRise the maximum prefix sum of the
// window's memory deltas, so the intra-window peak survives batching.
type nodeDelta struct {
	mem, live, total int64
	peakRise         int64
	cpu              time.Duration
}

// edgeShard stripes per-class-pair interaction deltas. Cross-class
// events bump their kind counters here, under the one shard mutex the
// event already takes, so the hot path costs a single lock round.
type edgeShard struct {
	mu    sync.Mutex
	edges map[graph.EdgeKey]*edgeDelta
	ctr   counts
	_     [32]byte
}

// edgeDelta accumulates one class pair's interactions since the last
// flush.
type edgeDelta struct {
	inv, acc, bytes int64
}

// pendingClass is a class interned since the last flush, in ID order.
type pendingClass struct {
	id   graph.NodeID
	name string
	meta ClassMeta
}

// Monitor builds and maintains the execution graph. It implements
// vm.Hooks; install it with VM.SetHooks. All methods are safe for
// concurrent use.
type Monitor struct {
	meta ClassMetaFunc

	// Lock-free interner: names maps class name → graph.NodeID, flags
	// maps NodeID → *atomic.Uint32 of applied metadata bits. createMu
	// serializes ID assignment; metaMu guards the pending flag-upgrade
	// set applied at the next flush.
	names    sync.Map // string → graph.NodeID
	flags    sync.Map // graph.NodeID → *atomic.Uint32
	createMu sync.Mutex
	pending  []pendingClass
	nextID   graph.NodeID

	metaMu      sync.Mutex
	pendingMeta map[graph.NodeID]uint32

	shardCount int
	shardMask  uint32
	nodeShards []nodeShard
	edgeShards []edgeShard

	// base accumulates shard counters drained at flush (guarded by mu);
	// GC events bypass the shards (no class to stripe by) and stay
	// atomic — they are orders of magnitude rarer than the rest.
	base counts
	gcs  atomic.Int64

	// GC listeners: copy-on-write. OnGC loads the slice pointer with one
	// atomic read — no per-event copy, no lock on the event path.
	listeners atomic.Pointer[[]GCListener]
	lmu       sync.Mutex

	// Recorder mirror: recOn gates the slow path with one atomic load.
	recMu sync.Mutex
	rec   *Recorder
	recOn atomic.Bool

	// fieldHeat counts accesses per (class, field) — the signal the lazy
	// state-transfer predictor reads. sync.Map of *atomic.Int64 keeps
	// field reads/writes off every mutex (lazy-migration heat tracking
	// rides the VM's hottest path).
	fieldHeat sync.Map // fieldKey → *atomic.Int64

	// mu guards the merged base graph and flushing.
	mu       sync.Mutex
	g        *graph.Graph
	halfLife float64
}

// fieldKey identifies one instance field for the heat table.
type fieldKey struct {
	class, field string
}

var (
	_ vm.Hooks      = (*Monitor)(nil)
	_ vm.FieldHooks = (*Monitor)(nil)
)

// New returns a monitor. meta may be nil, in which case no class is
// considered pinned (the emulator supplies metadata from the trace's class
// table instead).
func New(meta ClassMetaFunc, opts ...Option) *Monitor {
	m := &Monitor{
		meta:        meta,
		g:           graph.New(),
		shardCount:  defaultShards,
		pendingMeta: make(map[graph.NodeID]uint32),
	}
	for _, o := range opts {
		o(m)
	}
	n := 1
	for n < m.shardCount {
		n <<= 1
	}
	m.shardCount = n
	m.shardMask = uint32(n - 1)
	m.nodeShards = make([]nodeShard, n)
	m.edgeShards = make([]edgeShard, n)
	for i := 0; i < n; i++ {
		m.nodeShards[i].nodes = make(map[graph.NodeID]*nodeDelta)
		m.edgeShards[i].edges = make(map[graph.EdgeKey]*edgeDelta)
	}
	if m.halfLife > 0 {
		m.g.SetDecay(m.halfLife)
	}
	return m
}

// classID resolves a class name to its dense node ID, interning it on
// first sight. The hit path is one lock-free map load.
func (m *Monitor) classID(name string) graph.NodeID {
	if v, ok := m.names.Load(name); ok {
		return v.(graph.NodeID)
	}
	m.createMu.Lock()
	defer m.createMu.Unlock()
	if v, ok := m.names.Load(name); ok {
		return v.(graph.NodeID)
	}
	id := m.nextID
	m.nextID++
	var info ClassMeta
	if m.meta != nil {
		info = m.meta(name)
	}
	m.pending = append(m.pending, pendingClass{id: id, name: name, meta: info})
	fb := new(atomic.Uint32)
	fb.Store(info.bits())
	m.flags.Store(id, fb)
	m.names.Store(name, id)
	return id
}

func (m *Monitor) nodeShard(id graph.NodeID) *nodeShard {
	return &m.nodeShards[uint32(id)&m.shardMask]
}

func (m *Monitor) edgeShard(k graph.EdgeKey) *edgeShard {
	// Fibonacci-style mix of the canonical pair; any fixed function
	// works — determinism comes from commutative merges, not placement.
	h := uint32(k.A)*0x9E3779B1 ^ uint32(k.B)*0x85EBCA77
	return &m.edgeShards[(h^(h>>16))&m.shardMask]
}

func (s *nodeShard) add(id graph.NodeID, mem, live, total int64, cpu time.Duration, c counts) {
	s.mu.Lock()
	if mem != 0 || live != 0 || total != 0 || cpu != 0 {
		d := s.nodes[id]
		if d == nil {
			d = &nodeDelta{}
			s.nodes[id] = d
		}
		d.mem += mem
		if d.mem > d.peakRise {
			d.peakRise = d.mem
		}
		d.live += live
		d.total += total
		d.cpu += cpu
	}
	s.ctr.add(c)
	s.mu.Unlock()
}

func (s *edgeShard) add(k graph.EdgeKey, inv, acc, bytes int64, c counts) {
	s.mu.Lock()
	d := s.edges[k]
	if d == nil {
		d = &edgeDelta{}
		s.edges[k] = d
	}
	d.inv += inv
	d.acc += acc
	d.bytes += bytes
	s.ctr.add(c)
	s.mu.Unlock()
}

// record runs f against the attached recorder, if any. The recorder
// serializes on its own mutex so striped ingestion stays contention-free
// when recording is off (the common case).
func (m *Monitor) record(f func(r *Recorder)) {
	if !m.recOn.Load() {
		return
	}
	m.recMu.Lock()
	if m.rec != nil {
		f(m.rec)
	}
	m.recMu.Unlock()
}

// flushLocked merges every shard's deltas, pending classes, and pending
// metadata upgrades into the base graph. Caller holds m.mu. Integer
// merges commute and each class/pair lives in exactly one shard, so the
// merged graph is independent of shard iteration order.
func (m *Monitor) flushLocked() {
	m.createMu.Lock()
	pend := m.pending
	m.pending = nil
	m.createMu.Unlock()
	for i := range pend {
		pc := &pend[i]
		n := m.g.Intern(pc.name)
		n.Pinned = pc.meta.Pinned
		n.Array = pc.meta.Array
		n.Stateless = pc.meta.Stateless
	}

	m.metaMu.Lock()
	pm := m.pendingMeta
	m.pendingMeta = make(map[graph.NodeID]uint32)
	m.metaMu.Unlock()
	for id, bits := range pm { // OR-merges commute; order irrelevant
		if n := m.g.Node(id); n != nil {
			n.Pinned = n.Pinned || bits&1 != 0
			n.Array = n.Array || bits&2 != 0
			n.Stateless = n.Stateless || bits&4 != 0
			m.g.MarkNodeDirty(id)
		}
	}

	for i := range m.nodeShards {
		s := &m.nodeShards[i]
		s.mu.Lock()
		for id, d := range s.nodes {
			m.g.AddNodeDelta(id, d.mem, d.live, d.total, d.peakRise, d.cpu)
		}
		clear(s.nodes)
		m.base.add(s.ctr)
		s.ctr = counts{}
		s.mu.Unlock()
	}

	// Drain edge-shard counters first so the clock covers every event in
	// this window, then advance event-time, then merge interactions:
	// every edge touched in the window decays from the window-end
	// timestamp.
	for i := range m.edgeShards {
		s := &m.edgeShards[i]
		s.mu.Lock()
		m.base.add(s.ctr)
		s.ctr = counts{}
		s.mu.Unlock()
	}
	m.g.AdvanceClock(float64(m.base.events + m.gcs.Load()))
	for i := range m.edgeShards {
		s := &m.edgeShards[i]
		s.mu.Lock()
		for k, d := range s.edges {
			m.g.AddEdgeDelta(k.A, k.B, d.inv, d.acc, d.bytes)
		}
		clear(s.edges)
		s.mu.Unlock()
	}
}

// Flush merges buffered shard deltas into the base graph. Snapshot
// accessors flush implicitly; explicit flushes are for tests and callers
// that want Live to be current without taking a snapshot.
func (m *Monitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
}

// Graph returns a snapshot (deep copy) of the execution graph, suitable
// for handing to the partitioning module while monitoring continues.
func (m *Monitor) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
	return m.g.Clone()
}

// Delta flushes and returns what changed since the given epoch — the
// O(changed edges) repartition path. Pass 0 on the first pull and the
// returned Epoch thereafter; an out-of-lineage epoch yields a Full
// resync. The delta holds value copies, safe to use while monitoring
// continues.
func (m *Monitor) Delta(since int64) graph.Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
	return m.g.Delta(since)
}

// Live flushes and returns the live execution graph without copying.
// Callers must not mutate it and should hold no reference across further
// execution.
func (m *Monitor) Live() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
	return m.g
}

// liveCounts sums the drained totals with every shard's undrained
// counters. Caller holds m.mu.
func (m *Monitor) liveCounts() counts {
	c := m.base
	for i := range m.nodeShards {
		s := &m.nodeShards[i]
		s.mu.Lock()
		c.add(s.ctr)
		s.mu.Unlock()
	}
	for i := range m.edgeShards {
		s := &m.edgeShards[i]
		s.mu.Lock()
		c.add(s.ctr)
		s.mu.Unlock()
	}
	return c
}

// Events reports the monitor's event-time clock: the total number of
// events consumed (the decay half-life is measured in these units).
func (m *Monitor) Events() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveCounts().events + m.gcs.Load()
}

// Counts reports how many events of each kind the monitor has consumed.
func (m *Monitor) Counts() (invocations, accesses, creates, deletes, gcs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.liveCounts()
	return c.inv, c.acc, c.creates, c.deletes, m.gcs.Load()
}

// OnGCListener subscribes to garbage-collection resource reports.
func (m *Monitor) OnGCListener(f GCListener) {
	m.lmu.Lock()
	defer m.lmu.Unlock()
	old := m.listeners.Load()
	var next []GCListener
	if old != nil {
		next = make([]GCListener, len(*old), len(*old)+1)
		copy(next, *old)
	}
	next = append(next, f)
	m.listeners.Store(&next)
}

// SetRecorder attaches a trace recorder that mirrors every event (nil
// detaches).
func (m *Monitor) SetRecorder(r *Recorder) {
	m.recMu.Lock()
	m.rec = r
	m.recMu.Unlock()
	m.recOn.Store(r != nil)
}

// OnInvoke implements vm.Hooks.
func (m *Monitor) OnInvoke(caller, callee, method string, obj vm.ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool) {
	cn := m.classID(callee)
	cross := caller != "" && caller != callee
	if selfTime != 0 || !cross {
		c := counts{}
		if !cross {
			c = counts{events: 1, inv: 1}
		}
		m.nodeShard(cn).add(cn, 0, 0, 0, selfTime, c)
	}
	if cross {
		from := m.classID(caller)
		k := graph.EdgeKey{A: from, B: cn}
		if k.A > k.B {
			k.A, k.B = k.B, k.A
		}
		m.edgeShard(k).add(k, 1, 0, argBytes+retBytes, counts{events: 1, inv: 1})
	}
	m.record(func(r *Recorder) {
		r.invoke(caller, callee, obj, argBytes+retBytes, selfTime, native, stateless)
	})
}

// OnAccess implements vm.Hooks.
func (m *Monitor) OnAccess(from, to string, obj vm.ObjectID, bytes int64) {
	tn := m.classID(to)
	if from != "" && from != to {
		fn := m.classID(from)
		k := graph.EdgeKey{A: fn, B: tn}
		if k.A > k.B {
			k.A, k.B = k.B, k.A
		}
		m.edgeShard(k).add(k, 0, 1, bytes, counts{events: 1, acc: 1})
	} else {
		m.nodeShard(tn).add(tn, 0, 0, 0, 0, counts{events: 1, acc: 1})
	}
	m.record(func(r *Recorder) { r.access(from, to, obj, bytes) })
}

// OnCreate implements vm.Hooks.
func (m *Monitor) OnCreate(class string, obj vm.ObjectID, size int64) {
	id := m.classID(class)
	m.nodeShard(id).add(id, size, 1, 1, 0, counts{events: 1, creates: 1})
	m.record(func(r *Recorder) { r.create(class, obj, size) })
}

// OnDelete implements vm.Hooks.
func (m *Monitor) OnDelete(class string, obj vm.ObjectID, size int64) {
	id := m.classID(class)
	m.nodeShard(id).add(id, -size, -1, 0, 0, counts{events: 1, deletes: 1})
	m.record(func(r *Recorder) { r.delete(class, obj, size) })
}

// OnGC implements vm.Hooks.
func (m *Monitor) OnGC(free, capacity int64, freed bool) {
	m.gcs.Add(1)
	m.record(func(r *Recorder) { r.gc(free, capacity, freed) })
	if ls := m.listeners.Load(); ls != nil {
		for _, f := range *ls {
			f(free, capacity, freed)
		}
	}
}

// OnFieldAccess implements vm.FieldHooks: it heats the (class, field)
// entry every instance-field read or write touches. The counter is a
// lock-free atomic — heat tracking stays off the contention path.
func (m *Monitor) OnFieldAccess(class, field string, bytes int64) {
	k := fieldKey{class: class, field: field}
	if v, ok := m.fieldHeat.Load(k); ok {
		v.(*atomic.Int64).Add(1)
		return
	}
	v, _ := m.fieldHeat.LoadOrStore(k, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// FieldHeat reports how many accesses the monitor has seen for one field
// (diagnostics and tests).
func (m *Monitor) FieldHeat(class, field string) int64 {
	if v, ok := m.fieldHeat.Load(fieldKey{class: class, field: field}); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// FieldPredictor derives a lazy-migration predictor from the heat table:
// a field is hot (ship eagerly) once it has at least minAccesses recorded
// accesses; colder fields stay behind for on-demand pull. minAccesses < 1
// defaults to 1 — any observed access makes the field hot. The predictor
// reads the live table, so heat accumulated after installation counts.
func (m *Monitor) FieldPredictor(minAccesses int64) vm.FieldPredictor {
	if minAccesses < 1 {
		minAccesses = 1
	}
	return func(class, field string) bool {
		return m.FieldHeat(class, field) >= minAccesses
	}
}

// Feed consumes one trace event, keyed against the trace's class table.
// The emulator uses this to drive the shared monitoring module from a
// recorded trace exactly as the prototype drives it live.
func (m *Monitor) Feed(t *trace.Trace, e *trace.Event) {
	switch e.Kind {
	case trace.KindInvoke:
		caller := ""
		if e.Caller >= 0 && int(e.Caller) < len(t.Classes) {
			caller = t.Classes[e.Caller].Name
		}
		callee := t.Classes[e.Callee].Name
		m.ensureMeta(t, e.Callee)
		if e.Caller >= 0 {
			m.ensureMeta(t, e.Caller)
		}
		m.OnInvoke(caller, callee, "", vm.ObjectID(e.Obj), e.Bytes, 0, e.SelfTime, e.Native, e.Stateless)
	case trace.KindAccess:
		m.ensureMeta(t, e.Caller)
		m.ensureMeta(t, e.Callee)
		m.OnAccess(t.Classes[e.Caller].Name, t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindCreate:
		m.ensureMeta(t, e.Callee)
		m.OnCreate(t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindDelete:
		m.ensureMeta(t, e.Callee)
		m.OnDelete(t.Classes[e.Callee].Name, vm.ObjectID(e.Obj), e.Bytes)
	case trace.KindGC:
		m.OnGC(e.Free, e.Capacity, e.Freed)
	}
}

// ensureMeta pins/flags the node from the trace class table before the
// generic hook interns it without metadata. The hit path — flags already
// applied — is two lock-free loads and one atomic read.
func (m *Monitor) ensureMeta(t *trace.Trace, id trace.ClassID) {
	info := t.Class(id)
	if info.Name == "" {
		return
	}
	want := ClassMeta{Pinned: info.Pinned, Array: info.Array, Stateless: info.Stateless}.bits()
	nid := m.classID(info.Name)
	v, ok := m.flags.Load(nid)
	if !ok {
		return // unreachable: classID registers flags before publishing
	}
	fb := v.(*atomic.Uint32)
	for {
		cur := fb.Load()
		if cur|want == cur {
			return // already applied (or pending): nothing to upgrade
		}
		if fb.CompareAndSwap(cur, cur|want) {
			break
		}
	}
	m.metaMu.Lock()
	m.pendingMeta[nid] |= want
	m.metaMu.Unlock()
}

// RegistryMeta adapts a VM class registry into a ClassMetaFunc: classes
// with native methods are pinned (paper §3.3).
func RegistryMeta(r *vm.Registry) ClassMetaFunc {
	return func(name string) ClassMeta {
		c := r.Class(name)
		if c == nil {
			return ClassMeta{}
		}
		return ClassMeta{
			Pinned:    c.Pinned(),
			Array:     c.Array,
			Stateless: c.NativeStateless(),
		}
	}
}
