// Package emulator implements AIDE's trace-driven emulation (paper §4).
//
// The emulator replaces the VM with a wrapper that plays back execution and
// resource traces into the same monitoring and partitioning modules the
// prototype uses. Distributed execution of a trace is assumed equivalent to
// serial execution: after partitioning, execution moves between the two
// emulated VMs synchronously, and remote communication is simulated by
// stretching simulated execution time to account for remote invocations and
// data accesses over the modeled link.
package emulator

import (
	"errors"
	"fmt"
	"time"

	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/monitor"
	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

// Heuristic selects the candidate-partitioning algorithm (the paper's §8
// names "additional partitioning heuristics" as future work; the greedy
// density heuristic is provided as an ablation baseline).
type Heuristic int

// Partitioning heuristics.
const (
	// HeuristicModifiedMinCut is the paper's §3.3 algorithm (default).
	HeuristicModifiedMinCut Heuristic = iota

	// HeuristicGreedyDensity grows the offload set by memory freed per
	// unit of cut weight.
	HeuristicGreedyDensity
)

// Mode selects which resource constraint drives offloading.
type Mode int

// Emulation modes.
const (
	// MemoryMode offloads to relieve memory constraints (paper §5.1):
	// garbage-collection reports feed a MemoryTrigger, and the
	// MemoryPolicy picks a partitioning that frees enough heap.
	MemoryMode Mode = iota + 1

	// CPUMode offloads to relieve processing constraints (paper §5.2):
	// the placement is re-evaluated periodically and the CPUPolicy
	// offloads only when the predicted distributed time beats local
	// execution.
	CPUMode
)

// Config parametrizes an emulation run.
type Config struct {
	// Mode selects memory- or CPU-constrained offloading.
	Mode Mode

	// HeapCapacity is the emulated client Java heap in bytes.
	HeapCapacity int64

	// Link models the client↔surrogate network (the paper uses WaveLAN).
	Link netmodel.Link

	// SurrogateSpeedup is the surrogate/client CPU speed ratio (1.0 in
	// the memory experiments, 3.5 in the processing experiments).
	SurrogateSpeedup float64

	// ClientSlowdown scales trace self-times (recorded at the tracing
	// PC's speed) to the emulated client's speed: the paper's client
	// device is an HP Jornada, several times slower than the PC that
	// recorded the trace. 1.0 emulates a PC-speed client.
	ClientSlowdown float64

	// ForceCPUOffload applies the best predicted CPU partitioning even
	// when it does not beat local execution (the Figure 10 study bars).
	ForceCPUOffload bool

	// MinOffloadCPUFraction is the share of recorded CPU time a CPU-mode
	// candidate must offload (policy.CPUPolicy.MinCPUFraction). Zero
	// defaults to 0.2.
	MinOffloadCPUFraction float64

	// Params are the trigger/partitioning policy parameters (memory
	// mode).
	Params policy.Params

	// ReevalEvery is the periodic re-evaluation interval of simulated
	// time (CPU mode). Zero defaults to 10 simulated seconds.
	ReevalEvery time.Duration

	// StatelessNativeLocal executes stateless native methods (math
	// functions etc.) on the device where they are invoked (§5.2
	// enhancement).
	StatelessNativeLocal bool

	// ArrayGranularity places primitive-array objects individually, at
	// object rather than class granularity (§5.2 enhancement).
	ArrayGranularity bool

	// MaxPartitions bounds how many times the emulator repartitions.
	// Zero defaults to 1 (the prototype performs a single offloading);
	// the emulator supports repeated repartitioning.
	MaxPartitions int

	// MonitorCostPerEvent charges simulated time per monitored event,
	// modeling the prototype's measured ~11% monitoring overhead. Zero
	// disables the charge.
	MonitorCostPerEvent time.Duration

	// DisableOffload replays without ever partitioning: the original,
	// client-only execution (the paper's "Original" bars). An
	// out-of-memory condition then aborts the run.
	DisableOffload bool

	// GC trigger thresholds; zeros choose Chai-like defaults.
	GCObjectTrigger int64
	GCBytesTrigger  int64

	// Heuristic selects the candidate-partitioning algorithm; the zero
	// value is the paper's modified MINCUT.
	Heuristic Heuristic

	// KLRefine applies a Kernighan–Lin improvement pass to the chosen
	// partitioning before it is applied (ablation).
	KLRefine bool
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = MemoryMode
	}
	if c.SurrogateSpeedup <= 0 {
		c.SurrogateSpeedup = 1
	}
	if c.ClientSlowdown <= 0 {
		c.ClientSlowdown = 1
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 1
	}
	if c.ReevalEvery <= 0 {
		c.ReevalEvery = 10 * time.Second
	}
	if c.HeapCapacity <= 0 {
		c.HeapCapacity = 64 << 20
	}
	if c.GCObjectTrigger <= 0 {
		c.GCObjectTrigger = 512
	}
	if c.GCBytesTrigger <= 0 {
		c.GCBytesTrigger = c.HeapCapacity / 8
	}
	if c.Params == (policy.Params{}) {
		c.Params = policy.InitialParams()
	}
	return c
}

// Side is a placement side.
type Side uint8

// Placement sides.
const (
	OnClient Side = iota
	OnSurrogate
)

// PartitionRecord describes one (re)partitioning during replay.
type PartitionRecord struct {
	// EventIndex is the trace position at which partitioning ran.
	EventIndex int

	// At is the simulated time of the decision.
	At time.Duration

	// Decision is the policy's choice.
	Decision policy.Decision

	// OffloadedClasses lists the classes moved to the surrogate.
	OffloadedClasses []string

	// TransferBytes/TransferTime are the one-time offload costs charged.
	TransferBytes int64
	TransferTime  time.Duration

	// HeapFreedFraction is TransferBytes over the heap capacity.
	HeapFreedFraction float64

	// PredictedBandwidthBps is the interaction bandwidth the execution
	// history predicts for this cut.
	PredictedBandwidthBps float64

	// Rejected records a trigger that fired but found no beneficial
	// partitioning.
	Rejected bool

	// RejectedReason carries the policy's explanation when Rejected.
	RejectedReason string

	// Forced marks a partitioning run under hard memory pressure
	// (allocation failure) rather than the periodic trigger.
	Forced bool
}

// Result summarizes a replay.
type Result struct {
	App string

	// Time is the total simulated execution time of this run: execution,
	// remote communication, offload transfers, and monitoring charges.
	Time time.Duration

	// ExecTime, CommTime, TransferTime, MonitorTime decompose Time.
	ExecTime     time.Duration
	CommTime     time.Duration
	TransferTime time.Duration
	MonitorTime  time.Duration

	// ExecClient and ExecSurrogate split ExecTime by the side that
	// executed (the client idles during surrogate execution — the basis
	// of the energy model).
	ExecClient    time.Duration
	ExecSurrogate time.Duration

	// OOM reports that the run died of memory exhaustion (only possible
	// with DisableOffload or when no beneficial partitioning exists);
	// OOMEvent is the trace position.
	OOM      bool
	OOMEvent int

	// Partitions records every partitioning attempt.
	Partitions []PartitionRecord

	// Offloaded reports whether any partitioning was applied.
	Offloaded bool

	// RemoteInvocations counts invoke events that crossed the cut;
	// RemoteNative counts the subset that were directed to the client
	// because they were native (Figure 8); RemoteAccesses counts data
	// accesses that crossed.
	RemoteInvocations int64
	RemoteNative      int64
	RemoteAccesses    int64

	// LinkBytes is the total payload crossing the link, excluding offload
	// transfers.
	LinkBytes int64

	// GCCycles counts simulated collection cycles.
	GCCycles int64

	// Events counts replayed trace events.
	Events int64
}

// ClientEnergy estimates the client's battery drain for this run under
// the energy model: the CPU is active during client-side execution and
// idles otherwise; the radio is active for communication and transfers
// and stays associated from the first offload onward (approximated as the
// whole run when anything offloaded, zero otherwise).
func (r *Result) ClientEnergy(m netmodel.EnergyModel) netmodel.EnergyBreakdown {
	waiting := r.Time - r.ExecClient
	if waiting < 0 {
		waiting = 0
	}
	airtime := r.CommTime + r.TransferTime
	var radioUp time.Duration
	if r.Offloaded {
		radioUp = r.Time
	}
	return m.Energy(r.ExecClient, waiting, airtime, radioUp)
}

// Overhead returns the remote-execution overhead of this run relative to
// the given original (client-only) time: offloading time plus communication
// time, as a fraction (paper §5.1).
func (r *Result) Overhead(original time.Duration) float64 {
	if original <= 0 {
		return 0
	}
	return float64(r.Time-original) / float64(original)
}

// objInfo tracks a live object during replay.
type objInfo struct {
	class trace.ClassID
	size  int64
	side  Side
	array bool
}

// emulation is the per-run state.
type emulation struct {
	cfg Config
	tr  *trace.Trace
	mon *monitor.Monitor
	res *Result

	// side[class] is the current class placement.
	side []Side

	// objects tracks live objects for heap simulation and array
	// granularity.
	objects map[trace.ObjectID]*objInfo

	// arrayAffinity[obj][class] counts interactions between the array
	// object and the class, for object-granularity placement.
	arrayAffinity map[trace.ObjectID]map[trace.ClassID]int64

	clientLive   int64
	garbage      int64
	objsSinceGC  int64
	bytesSinceGC int64

	trigger  policy.MemoryTrigger
	fired    bool // memory trigger raised, partition pending
	periodic policy.PeriodicTrigger

	classByName map[string]int

	// mc and memScratch amortize the dense partitioning input (the N×N
	// weight matrix dominates repartition allocations) and the greedy
	// heuristic's memory vector across repartitions of this run.
	mc         mincut.Scratch
	memScratch []int64

	inForced   bool
	partitions int
	now        time.Duration
}

// Run replays the trace under the configuration.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	e := &emulation{
		cfg:           cfg,
		tr:            tr,
		mon:           monitor.New(nil),
		res:           &Result{App: tr.App},
		side:          make([]Side, len(tr.Classes)),
		objects:       make(map[trace.ObjectID]*objInfo),
		arrayAffinity: make(map[trace.ObjectID]map[trace.ClassID]int64),
		trigger: policy.MemoryTrigger{
			FreeFraction: cfg.Params.TriggerFreeFraction,
			Tolerance:    cfg.Params.Tolerance,
		},
		periodic:    policy.PeriodicTrigger{Every: cfg.ReevalEvery},
		classByName: make(map[string]int, len(tr.Classes)),
	}
	for i := range tr.Classes {
		e.classByName[tr.Classes[i].Name] = i
	}
	if err := e.trigger.Validate(); err != nil {
		return nil, err
	}
	e.run()
	e.res.Time = e.res.ExecTime + e.res.CommTime + e.res.TransferTime + e.res.MonitorTime
	return e.res, nil
}

func (e *emulation) run() {
	for i := range e.tr.Events {
		ev := &e.tr.Events[i]
		if ev.Kind == trace.KindGC {
			// Recorded resource events are superseded by the replayed
			// heap simulation.
			continue
		}
		e.mon.Feed(e.tr, ev)
		e.res.Events++
		if e.cfg.MonitorCostPerEvent > 0 {
			e.res.MonitorTime += e.cfg.MonitorCostPerEvent
			e.now += e.cfg.MonitorCostPerEvent
		}
		switch ev.Kind {
		case trace.KindInvoke:
			e.invoke(ev)
		case trace.KindAccess:
			e.access(ev)
		case trace.KindCreate:
			if !e.create(ev, i) {
				return // out of memory; run aborted
			}
		case trace.KindDelete:
			e.delete(ev)
		}
		// A raised memory trigger partitions at the next event boundary.
		if e.fired && !e.cfg.DisableOffload && e.cfg.Mode == MemoryMode {
			e.fired = false
			e.partition(i, false)
		}
		if e.cfg.Mode == CPUMode && !e.cfg.DisableOffload && e.periodic.Tick(e.now) {
			e.partition(i, false)
		}
	}
}

// execSide returns where an invoke event executes, honoring native routing
// and the stateless enhancement.
func (e *emulation) execSide(ev *trace.Event, callerSide Side) Side {
	if ev.Native {
		if ev.Stateless && e.cfg.StatelessNativeLocal {
			// Stateless natives run on the device where they are invoked.
			return callerSide
		}
		return OnClient
	}
	return e.objectSide(ev.Obj, ev.Callee)
}

// objectSide returns the placement of an interaction target: the object's
// own side when array granularity tracks it, its class's side otherwise.
func (e *emulation) objectSide(obj trace.ObjectID, class trace.ClassID) Side {
	if e.cfg.ArrayGranularity && obj != trace.NoObject {
		if oi, ok := e.objects[obj]; ok && oi.array {
			return oi.side
		}
	}
	return e.side[class]
}

// execCost scales a recorded self-time to the emulated device executing
// it: trace times are at tracing-PC speed; the client runs ClientSlowdown×
// slower, and the surrogate runs SurrogateSpeedup× faster than the client.
func (e *emulation) execCost(d time.Duration, s Side) time.Duration {
	scaled := float64(d) * e.cfg.ClientSlowdown
	if s == OnSurrogate {
		scaled /= e.cfg.SurrogateSpeedup
	}
	return time.Duration(scaled)
}

func (e *emulation) invoke(ev *trace.Event) {
	callerSide := e.side[ev.Caller]
	execAt := e.execSide(ev, callerSide)
	cost := e.execCost(ev.SelfTime, execAt)
	e.res.ExecTime += cost
	if execAt == OnClient {
		e.res.ExecClient += cost
	} else {
		e.res.ExecSurrogate += cost
	}
	e.now += cost
	e.noteAffinity(ev)
	if callerSide != execAt {
		cost := e.cfg.Link.RPC(ev.Bytes, 0)
		e.res.CommTime += cost
		e.now += cost
		e.res.LinkBytes += ev.Bytes
		e.res.RemoteInvocations++
		if ev.Native {
			e.res.RemoteNative++
		}
	}
}

func (e *emulation) access(ev *trace.Event) {
	callerSide := e.side[ev.Caller]
	targetSide := e.objectSide(ev.Obj, ev.Callee)
	e.noteAffinity(ev)
	if callerSide != targetSide {
		cost := e.cfg.Link.RPC(ev.Bytes, 0)
		e.res.CommTime += cost
		e.now += cost
		e.res.LinkBytes += ev.Bytes
		e.res.RemoteAccesses++
	}
}

// noteAffinity accumulates per-object interaction counts for array-class
// objects (used by the object-granularity enhancement).
func (e *emulation) noteAffinity(ev *trace.Event) {
	if !e.cfg.ArrayGranularity || ev.Obj == trace.NoObject {
		return
	}
	oi, ok := e.objects[ev.Obj]
	if !ok || !oi.array {
		return
	}
	m, ok := e.arrayAffinity[ev.Obj]
	if !ok {
		m = make(map[trace.ClassID]int64, 4)
		e.arrayAffinity[ev.Obj] = m
	}
	m[ev.Caller]++
}

func (e *emulation) create(ev *trace.Event, idx int) bool {
	cls := e.tr.Class(ev.Callee)
	side := e.side[ev.Callee]
	oi := &objInfo{class: ev.Callee, size: ev.Bytes, side: side, array: cls.Array}
	e.objects[ev.Obj] = oi
	if side == OnSurrogate {
		return true // surrogate resources are assumed plentiful (paper §2)
	}
	// Client allocation: may require collection, may hit the wall.
	if e.clientLive+e.garbage+ev.Bytes > e.cfg.HeapCapacity {
		e.collect()
	}
	if e.clientLive+ev.Bytes > e.cfg.HeapCapacity {
		// Hard memory pressure: the platform partitions right now (the
		// prototype detects the lack of available memory and offloads;
		// paper §5.1).
		if !e.cfg.DisableOffload && e.cfg.Mode == MemoryMode {
			e.partition(idx, true)
		}
		if e.clientLive+ev.Bytes > e.cfg.HeapCapacity {
			e.res.OOM = true
			e.res.OOMEvent = idx
			return false
		}
	}
	e.clientLive += ev.Bytes
	e.objsSinceGC++
	e.bytesSinceGC += ev.Bytes
	if e.objsSinceGC >= e.cfg.GCObjectTrigger || e.bytesSinceGC >= e.cfg.GCBytesTrigger {
		e.collect()
	}
	return true
}

func (e *emulation) delete(ev *trace.Event) {
	oi, ok := e.objects[ev.Obj]
	if !ok {
		return
	}
	delete(e.objects, ev.Obj)
	delete(e.arrayAffinity, ev.Obj)
	if oi.side == OnClient {
		e.clientLive -= oi.size
		e.garbage += oi.size
	}
}

// debugGC, when set by tests, observes every simulated collection.
var debugGC func(free, capacity int64, freed bool)

// collect runs one simulated GC cycle and feeds the memory trigger.
func (e *emulation) collect() {
	freed := e.garbage > 0
	e.garbage = 0
	e.objsSinceGC = 0
	e.bytesSinceGC = 0
	e.res.GCCycles++
	free := e.cfg.HeapCapacity - e.clientLive
	if debugGC != nil {
		debugGC(free, e.cfg.HeapCapacity, freed)
	}
	if e.cfg.Mode == MemoryMode && !e.cfg.DisableOffload && e.partitions < e.cfg.MaxPartitions {
		if e.trigger.Report(free, e.cfg.HeapCapacity, freed) {
			e.fired = true
		}
	}
}

// partition runs the modified MINCUT heuristic and the configured policy,
// applying the decision if one is beneficial. forced marks hard memory
// pressure (allocation failure), which bypasses the trigger.
func (e *emulation) partition(idx int, forced bool) {
	e.inForced = forced
	// Hard memory pressure overrides the partition budget: failing the
	// application to honor a budget would be perverse.
	if e.partitions >= e.cfg.MaxPartitions && !forced {
		return
	}
	g := e.mon.Graph()
	e.syncPins(g)
	in := e.mc.FromGraph(g, graph.BytesWeight)
	var cands []mincut.Candidate
	var err error
	switch e.cfg.Heuristic {
	case HeuristicGreedyDensity:
		if cap(e.memScratch) < g.Len() {
			e.memScratch = make([]int64, g.Len())
		}
		mem := e.memScratch[:g.Len()]
		for _, n := range g.Nodes() {
			mem[n.ID] = n.Memory
		}
		cands, err = e.mc.GreedyDensityCandidates(in, mem)
	default:
		cands, err = e.mc.Candidates(in)
	}
	if err != nil {
		e.res.Partitions = append(e.res.Partitions, PartitionRecord{
			EventIndex: idx, At: e.now, Rejected: true, RejectedReason: err.Error(),
		})
		return
	}

	var dec policy.Decision
	switch e.cfg.Mode {
	case MemoryMode:
		mp := policy.MemoryPolicy{MinFreeFraction: e.cfg.Params.MinFreeFraction}
		dec, err = mp.Choose(g, e.cfg.HeapCapacity, cands)
		if err != nil && forced {
			// Hard pressure: accept any partitioning that frees memory.
			mp.MinFreeFraction = 0
			dec, err = mp.Choose(g, e.cfg.HeapCapacity, cands)
		}
	case CPUMode:
		minCPU := e.cfg.MinOffloadCPUFraction
		if minCPU <= 0 {
			minCPU = 0.2
		}
		cp := policy.CPUPolicy{
			Speedup:              e.cfg.SurrogateSpeedup,
			ClientSlowdown:       e.cfg.ClientSlowdown,
			Link:                 e.cfg.Link,
			StatelessNativeLocal: e.cfg.StatelessNativeLocal,
			ArrayGranularity:     e.cfg.ArrayGranularity,
			MinCPUFraction:       minCPU,
		}
		if e.cfg.ForceCPUOffload {
			dec, err = cp.ChooseBest(g, cands)
		} else {
			dec, err = cp.Choose(g, cands)
		}
	}
	if err != nil {
		e.res.Partitions = append(e.res.Partitions, PartitionRecord{
			EventIndex: idx, At: e.now, Decision: dec,
			Rejected: true, RejectedReason: err.Error(),
		})
		return
	}
	if e.cfg.KLRefine {
		refined, cutW, rerr := e.mc.RefineKL(in, dec.InClient)
		if rerr == nil {
			dec.InClient = refined
			dec.CutWeight = cutW
		}
	}
	e.apply(g, dec, idx)
}

// syncPins marks pinned and array classes on the snapshot from the trace
// class table (stateless natives lose their pin under the enhancement only
// for execution, not placement: the class itself still cannot migrate if
// it has any non-stateless native; the trace's Pinned flag already encodes
// that).
func (e *emulation) syncPins(g *graph.Graph) {
	for _, n := range g.Nodes() {
		// Nodes are interned by name from Feed; the trace table is the
		// source of truth.
		if ci, ok := e.classByName[n.Name]; ok {
			n.Pinned = e.tr.Classes[ci].Pinned
			n.Array = e.tr.Classes[ci].Array
			n.Stateless = e.tr.Classes[ci].Stateless
		}
	}
}

// apply installs a decision: class placements move, live objects of
// offloaded classes transfer, array objects re-place by affinity.
func (e *emulation) apply(g *graph.Graph, dec policy.Decision, idx int) {
	rec := PartitionRecord{EventIndex: idx, At: e.now, Decision: dec, Forced: e.inForced}

	newSide := make([]Side, len(e.side))
	for _, n := range g.Nodes() {
		cid := e.classID(n.Name)
		if cid < 0 {
			continue
		}
		if dec.InClient[n.ID] {
			newSide[cid] = OnClient
		} else {
			newSide[cid] = OnSurrogate
			rec.OffloadedClasses = append(rec.OffloadedClasses, n.Name)
		}
	}
	// Classes never seen by the graph keep their old side.
	for cid := range e.side {
		if _, seen := g.Lookup(e.tr.Classes[cid].Name); !seen {
			newSide[cid] = e.side[cid]
		}
	}
	e.side = newSide

	// Move live objects: class placement first, then array-object
	// affinity overrides.
	var moved int64
	for obj, oi := range e.objects {
		target := e.side[oi.class]
		if e.cfg.ArrayGranularity && oi.array {
			target = e.affinitySide(obj, oi)
		}
		if target == oi.side {
			continue
		}
		if oi.side == OnClient {
			e.clientLive -= oi.size
			moved += oi.size
		} else {
			e.clientLive += oi.size
			moved += oi.size
		}
		oi.side = target
	}
	if moved > 0 {
		rec.TransferBytes = moved
		rec.TransferTime = e.cfg.Link.Transfer(moved, 1400)
		e.res.TransferTime += rec.TransferTime
		e.now += rec.TransferTime
	}
	rec.HeapFreedFraction = float64(rec.TransferBytes) / float64(e.cfg.HeapCapacity)
	if e.now > 0 {
		rec.PredictedBandwidthBps = netmodel.Bandwidth(dec.CutBytes, e.now)
	}
	e.res.Partitions = append(e.res.Partitions, rec)
	e.res.Offloaded = true
	e.partitions++
	e.trigger.Reset()
}

// affinitySide places one array object on the side it historically
// interacts with most.
func (e *emulation) affinitySide(obj trace.ObjectID, oi *objInfo) Side {
	aff, ok := e.arrayAffinity[obj]
	if !ok || len(aff) == 0 {
		return e.side[oi.class]
	}
	var client, surrogate int64
	for cls, n := range aff {
		if e.side[cls] == OnClient {
			client += n
		} else {
			surrogate += n
		}
	}
	if surrogate > client {
		return OnSurrogate
	}
	return OnClient
}

func (e *emulation) classID(name string) int {
	if i, ok := e.classByName[name]; ok {
		return i
	}
	return -1
}

// RunOriginal replays with offloading disabled, returning the client-only
// baseline. An out-of-memory abort is reported as an error alongside the
// partial result (matching the paper's JavaNote failure on an unmodified
// 6 MB VM).
func RunOriginal(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg.DisableOffload = true
	res, err := Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	if res.OOM {
		return res, fmt.Errorf("emulator: %s: %w at event %d", tr.App, ErrOutOfMemory, res.OOMEvent)
	}
	return res, nil
}

// ErrOutOfMemory marks a replay that exhausted the emulated client heap.
var ErrOutOfMemory = errors.New("out of memory")
