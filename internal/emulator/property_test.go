package emulator

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

// randomTrace generates a structurally valid trace with random clusters,
// sizes, and interaction patterns.
func randomTrace(r *rand.Rand) *trace.Trace {
	nClasses := 3 + r.Intn(10)
	tr := &trace.Trace{App: "Random", HeapCapacity: 32 << 20}
	for i := 0; i < nClasses; i++ {
		tr.Classes = append(tr.Classes, trace.ClassInfo{
			Name:      string(rune('A' + i)),
			Pinned:    i == 0 || r.Intn(5) == 0,
			Array:     r.Intn(6) == 0,
			Stateless: r.Intn(8) == 0,
		})
	}
	var nextObj trace.ObjectID
	live := map[trace.ObjectID]trace.ClassID{}
	liveSize := map[trace.ObjectID]int64{}
	events := 200 + r.Intn(800)
	for i := 0; i < events; i++ {
		switch r.Intn(10) {
		case 0, 1, 2: // create
			nextObj++
			cls := trace.ClassID(r.Intn(nClasses))
			size := int64(r.Intn(64 << 10))
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindCreate, Callee: cls, Obj: nextObj, Bytes: size,
			})
			live[nextObj] = cls
			liveSize[nextObj] = size
		case 3: // delete a random live object
			for id, cls := range live {
				tr.Events = append(tr.Events, trace.Event{
					Kind: trace.KindDelete, Callee: cls, Obj: id, Bytes: liveSize[id],
				})
				delete(live, id)
				delete(liveSize, id)
				break
			}
		case 4, 5, 6, 7: // invoke
			caller := trace.ClassID(r.Intn(nClasses))
			callee := trace.ClassID(r.Intn(nClasses))
			native := tr.Classes[callee].Pinned && r.Intn(2) == 0
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindInvoke, Caller: caller, Callee: callee,
				Obj: trace.NoObject, Bytes: int64(r.Intn(512)),
				SelfTime: time.Duration(r.Intn(1000)) * time.Microsecond,
				Native:   native, Stateless: native && tr.Classes[callee].Stateless,
			})
		default: // access
			caller := trace.ClassID(r.Intn(nClasses))
			callee := trace.ClassID(r.Intn(nClasses))
			var obj trace.ObjectID = trace.NoObject
			for id, cls := range live {
				obj, callee = id, cls
				break
			}
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindAccess, Caller: caller, Callee: callee,
				Obj: obj, Bytes: int64(r.Intn(256)),
			})
		}
	}
	return tr
}

// TestReplayInvariants checks, over random traces and configurations, that
// the emulator never produces inconsistent results: time decomposition
// holds, components are non-negative, baseline equals ΣSelfTime, and
// replay is deterministic.
func TestReplayInvariants(t *testing.T) {
	check := func(seed int64, heapKB uint16, memMode bool) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r)
		if err := tr.Validate(); err != nil {
			t.Logf("generator bug: %v", err)
			return false
		}
		cfg := Config{
			HeapCapacity:   int64(heapKB)<<10 + 64<<10,
			Link:           netmodel.WaveLAN(),
			ClientSlowdown: 1 + float64(seed%7),
			Params:         policy.Params{TriggerFreeFraction: 0.10, Tolerance: 1, MinFreeFraction: 0.10},
		}
		if memMode {
			cfg.Mode = MemoryMode
		} else {
			cfg.Mode = CPUMode
			cfg.SurrogateSpeedup = 3.5
			cfg.ReevalEvery = time.Millisecond
		}
		res, err := Run(tr, cfg)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if res.Time != res.ExecTime+res.CommTime+res.TransferTime+res.MonitorTime {
			t.Logf("decomposition broken: %+v", res)
			return false
		}
		if res.ExecTime < 0 || res.CommTime < 0 || res.TransferTime < 0 {
			t.Logf("negative component: %+v", res)
			return false
		}
		if res.ExecClient+res.ExecSurrogate != res.ExecTime {
			t.Logf("exec split broken: %+v", res)
			return false
		}
		if res.RemoteNative > res.RemoteInvocations {
			t.Logf("native exceeds remote: %+v", res)
			return false
		}
		if !res.Offloaded && (res.CommTime != 0 || res.RemoteInvocations != 0) {
			t.Logf("communication without offload: %+v", res)
			return false
		}
		// Determinism.
		res2, err := Run(tr, cfg)
		if err != nil || res2.Time != res.Time || res2.Events != res.Events {
			t.Logf("nondeterministic replay")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBaselineEqualsSelfTime: with offloading disabled and no slowdown,
// the replay's execution time is exactly the trace's total self time.
func TestBaselineEqualsSelfTime(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r)
		res, err := Run(tr, Config{
			Mode:           MemoryMode,
			HeapCapacity:   1 << 30,
			Link:           netmodel.WaveLAN(),
			DisableOffload: true,
		})
		if err != nil {
			return false
		}
		return res.ExecTime == tr.TotalSelfTime() && res.ExecSurrogate == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
