package emulator

import (
	"errors"
	"testing"
	"time"

	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

// synthTrace builds a trace with a pinned UI class, an offloadable DATA
// class holding most memory, and a MATH stateless-native class. Phases:
// allocate, then rounds of interactions, with DATA weakly coupled to UI.
func synthTrace(rounds int) *trace.Trace {
	tr := &trace.Trace{
		App:          "Synth",
		HeapCapacity: 12 << 20,
		Classes: []trace.ClassInfo{
			{Name: "ui", Pinned: true}, // 0
			{Name: "core"},             // 1
			{Name: "data"},             // 2
			{Name: "math", Pinned: true, Stateless: true}, // 3
			{Name: "arr", Array: true},                    // 4
		},
	}
	var obj trace.ObjectID
	newObj := func(class trace.ClassID, size int64) trace.ObjectID {
		obj++
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindCreate, Callee: class, Obj: obj, Bytes: size})
		return obj
	}
	inv := func(caller, callee trace.ClassID, o trace.ObjectID, bytes int64, self time.Duration, native, stateless bool) {
		tr.Events = append(tr.Events, trace.Event{
			Kind: trace.KindInvoke, Caller: caller, Callee: callee, Obj: o,
			Bytes: bytes, SelfTime: self, Native: native, Stateless: stateless,
		})
	}
	acc := func(caller, callee trace.ClassID, o trace.ObjectID, bytes int64) {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindAccess, Caller: caller, Callee: callee, Obj: o, Bytes: bytes})
	}

	_ = newObj(0, 8<<10) // the UI object itself
	coreObj := newObj(1, 16<<10)
	var datas []trace.ObjectID
	for i := 0; i < 40; i++ {
		datas = append(datas, newObj(2, 100<<10)) // 4 MB of data
	}
	arrObj := newObj(4, 512<<10)

	for r := 0; r < rounds; r++ {
		for i := 0; i < 200; i++ {
			inv(0, 1, coreObj, 64, 50*time.Microsecond, false, false) // hot ui↔core
		}
		for i := 0; i < 150; i++ {
			inv(2, 2, datas[r%len(datas)], 32, 30*time.Microsecond, false, false) // data internal
		}
		inv(1, 2, datas[r%len(datas)], 128, 40*time.Microsecond, false, false) // light core→data
		inv(2, 3, trace.NoObject, 16, 5*time.Microsecond, true, true)          // data→math native
		acc(1, 4, arrObj, 64)                                                  // core reads array
		acc(2, 4, arrObj, 32)
		acc(2, 4, arrObj, 32) // data touches array more often
		// Churn: transient garbage.
		g := newObj(1, 64<<10)
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindDelete, Callee: 1, Obj: g, Bytes: 64 << 10})
	}
	return tr
}

func memCfg(heap int64) Config {
	return Config{
		Mode:         MemoryMode,
		HeapCapacity: heap,
		Link:         netmodel.WaveLAN(),
		Params:       policy.Params{TriggerFreeFraction: 0.15, Tolerance: 1, MinFreeFraction: 0.20},
	}
}

func TestOriginalRunsWithoutOffload(t *testing.T) {
	tr := synthTrace(50)
	cfg := memCfg(32 << 20)
	cfg.DisableOffload = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloaded || res.OOM || res.CommTime != 0 || res.TransferTime != 0 {
		t.Fatalf("original run polluted: %+v", res)
	}
	if res.ExecTime != tr.TotalSelfTime() {
		t.Fatalf("exec = %v, want ΣSelfTime %v", res.ExecTime, tr.TotalSelfTime())
	}
}

func TestOOMWithoutOffload(t *testing.T) {
	tr := synthTrace(50)
	cfg := memCfg(2 << 20) // data alone exceeds the heap
	cfg.DisableOffload = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("constrained original run must die")
	}
	if _, err := RunOriginal(tr, cfg); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("RunOriginal err = %v", err)
	}
}

func TestMemoryOffloadRescues(t *testing.T) {
	tr := synthTrace(50)
	res, err := Run(tr, memCfg(5<<20)) // 4MB data + churn on 5MB heap
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatalf("offloading failed to rescue: %+v", res)
	}
	if !res.Offloaded {
		t.Fatal("no partitioning happened")
	}
	var moved int64
	offloadedData := false
	for _, p := range res.Partitions {
		moved += p.TransferBytes
		for _, c := range p.OffloadedClasses {
			if c == "data" {
				offloadedData = true
			}
			if c == "ui" || c == "math" {
				t.Fatalf("pinned class offloaded: %v", p.OffloadedClasses)
			}
		}
	}
	if !offloadedData || moved == 0 {
		t.Fatalf("data cluster not offloaded: %+v", res.Partitions)
	}
	if res.CommTime <= 0 || res.RemoteInvocations == 0 {
		t.Fatal("post-offload remote interactions missing")
	}
	if res.TransferTime <= 0 {
		t.Fatal("offload transfer not charged")
	}
	if res.Time != res.ExecTime+res.CommTime+res.TransferTime+res.MonitorTime {
		t.Fatal("time decomposition inconsistent")
	}
}

func TestOverheadOrderingAcrossLinkQuality(t *testing.T) {
	tr := synthTrace(50)
	orig, err := RunOriginal(tr, memCfg(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	fast := memCfg(5 << 20)
	fast.Link = netmodel.Link{BandwidthBps: 100e6, RTT: 200 * time.Microsecond, HeaderBytes: 32}
	slow := memCfg(5 << 20)
	slow.Link = netmodel.Link{BandwidthBps: 1e6, RTT: 20 * time.Millisecond, HeaderBytes: 32}
	fr, err := Run(tr, fast)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(tr, slow)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Offloaded || !sr.Offloaded {
		t.Fatal("both runs must offload")
	}
	if fr.Overhead(orig.Time) >= sr.Overhead(orig.Time) {
		t.Fatalf("overhead must grow with a worse link: %v vs %v",
			fr.Overhead(orig.Time), sr.Overhead(orig.Time))
	}
}

func TestMonitoringCostCharged(t *testing.T) {
	tr := synthTrace(20)
	base := memCfg(32 << 20)
	base.DisableOffload = true
	off, err := Run(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	base.MonitorCostPerEvent = 2 * time.Microsecond
	on, err := Run(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := time.Duration(on.Events) * 2 * time.Microsecond
	if on.Time-off.Time != wantExtra {
		t.Fatalf("monitor charge = %v, want %v", on.Time-off.Time, wantExtra)
	}
}

func TestClientSlowdownScalesExec(t *testing.T) {
	tr := synthTrace(20)
	cfg := memCfg(32 << 20)
	cfg.DisableOffload = true
	cfg.ClientSlowdown = 10
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 10*tr.TotalSelfTime() {
		t.Fatalf("exec = %v, want 10×", res.ExecTime)
	}
}

func TestCPUModeBeneficialOffload(t *testing.T) {
	tr := cpuTrace(40, 4, 50*time.Millisecond)
	cfg := Config{
		Mode:             CPUMode,
		HeapCapacity:     32 << 20,
		Link:             netmodel.WaveLAN(),
		SurrogateSpeedup: 3.5,
		ReevalEvery:      2 * time.Second,
	}
	origCfg := cfg
	origCfg.DisableOffload = true
	orig, err := Run(tr, origCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded {
		t.Fatalf("beneficial compute offload declined: %+v", res.Partitions)
	}
	if res.Time >= orig.Time {
		t.Fatalf("offloaded %v not faster than original %v", res.Time, orig.Time)
	}
}

func TestCPUModeDeclinesChattyWorkload(t *testing.T) {
	tr := cpuTrace(40, 3000, 50*time.Microsecond) // tiny work, heavy chatter
	cfg := Config{
		Mode:             CPUMode,
		HeapCapacity:     32 << 20,
		Link:             netmodel.WaveLAN(),
		SurrogateSpeedup: 3.5,
		ReevalEvery:      time.Second,
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloaded {
		t.Fatalf("chatty workload should not offload: %+v", res.Partitions)
	}
	rejected := false
	for _, p := range res.Partitions {
		if p.Rejected {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("expected recorded rejected partitioning attempts")
	}
}

// cpuTrace: pinned UI calling compute; compute talks to UI `chatter` times
// per round with `work` self time per compute call.
func cpuTrace(rounds, chatter int, work time.Duration) *trace.Trace {
	tr := &trace.Trace{
		App:          "CPU",
		HeapCapacity: 32 << 20,
		Classes: []trace.ClassInfo{
			{Name: "ui", Pinned: true},
			{Name: "compute"},
		},
	}
	tr.Events = append(tr.Events, trace.Event{Kind: trace.KindCreate, Callee: 1, Obj: 1, Bytes: 1 << 20})
	for r := 0; r < rounds; r++ {
		for i := 0; i < 10; i++ {
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindInvoke, Caller: 1, Callee: 1, Obj: 1,
				Bytes: 16, SelfTime: work,
			})
		}
		for i := 0; i < chatter; i++ {
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindInvoke, Caller: 0, Callee: 1, Obj: 1,
				Bytes: 32, SelfTime: 10 * time.Microsecond,
			})
		}
	}
	return tr
}

func TestStatelessNativeEnhancementRemovesRouting(t *testing.T) {
	tr := synthTrace(50)
	plain := memCfg(5 << 20)
	res1, err := Run(tr, plain)
	if err != nil {
		t.Fatal(err)
	}
	enhanced := plain
	enhanced.StatelessNativeLocal = true
	res2, err := Run(tr, enhanced)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Offloaded || !res2.Offloaded {
		t.Fatal("both must offload")
	}
	if res2.RemoteNative >= res1.RemoteNative {
		t.Fatalf("stateless enhancement must cut remote natives: %d vs %d",
			res2.RemoteNative, res1.RemoteNative)
	}
}

func TestArrayGranularityFollowsDominantUser(t *testing.T) {
	// arr is touched 2× more by data (offloaded) than core (client):
	// object-granularity placement must move it with data, reducing
	// remote accesses versus class-granularity (where the class's single
	// placement strands one side).
	tr := synthTrace(50)
	plain := memCfg(5 << 20)
	r1, err := Run(tr, plain)
	if err != nil {
		t.Fatal(err)
	}
	arrCfg := plain
	arrCfg.ArrayGranularity = true
	r2, err := Run(tr, arrCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Offloaded || !r2.Offloaded {
		t.Fatal("both must offload")
	}
	if r2.CommTime > r1.CommTime {
		t.Fatalf("array granularity should not increase communication: %v vs %v",
			r2.CommTime, r1.CommTime)
	}
}

func TestValidationErrors(t *testing.T) {
	tr := synthTrace(5)
	cfg := memCfg(5 << 20)
	cfg.Link = netmodel.Link{} // invalid
	if _, err := Run(tr, cfg); err == nil {
		t.Fatal("invalid link accepted")
	}
	bad := &trace.Trace{Classes: []trace.ClassInfo{{Name: "x"}},
		Events: []trace.Event{{Kind: trace.KindInvoke, Callee: 9}}}
	if _, err := Run(bad, memCfg(5<<20)); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := synthTrace(30)
	cfg := memCfg(5 << 20)
	a, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.RemoteInvocations != b.RemoteInvocations || a.GCCycles != b.GCCycles {
		t.Fatalf("replay nondeterministic: %+v vs %+v", a, b)
	}
}
