package emulator

import (
	"testing"
	"time"

	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

// phasedTrace builds a workload whose hot set shifts halfway through:
// phase 1 grows DATA1, phase 2 deletes it and grows DATA2. With repeated
// repartitioning allowed, the emulator should partition once per pressure
// phase.
func phasedTrace() *trace.Trace {
	tr := &trace.Trace{
		App:          "Phased",
		HeapCapacity: 32 << 20,
		Classes: []trace.ClassInfo{
			{Name: "ui", Pinned: true}, // 0
			{Name: "data1"},            // 1
			{Name: "data2"},            // 2
		},
	}
	var obj trace.ObjectID
	mk := func(cls trace.ClassID, size int64) trace.ObjectID {
		obj++
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindCreate, Callee: cls, Obj: obj, Bytes: size})
		return obj
	}
	del := func(id trace.ObjectID, cls trace.ClassID, size int64) {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindDelete, Callee: cls, Obj: id, Bytes: size})
	}
	work := func(cls trace.ClassID) {
		tr.Events = append(tr.Events, trace.Event{
			Kind: trace.KindInvoke, Caller: 0, Callee: cls, Obj: trace.NoObject,
			Bytes: 16, SelfTime: 20 * time.Microsecond,
		})
	}

	// Phase 1: 4 MB of data1.
	var phase1 []trace.ObjectID
	for i := 0; i < 40; i++ {
		phase1 = append(phase1, mk(1, 100<<10))
		work(1)
	}
	// Phase 2: data1 dies; 4 MB of data2 arrives.
	for _, id := range phase1 {
		del(id, 1, 100<<10)
	}
	for i := 0; i < 40; i++ {
		mk(2, 100<<10)
		work(2)
	}
	return tr
}

func TestRepeatedRepartitioning(t *testing.T) {
	tr := phasedTrace()
	cfg := Config{
		Mode:          MemoryMode,
		HeapCapacity:  5 << 20,
		Link:          netmodel.WaveLAN(),
		Params:        policy.Params{TriggerFreeFraction: 0.35, Tolerance: 1, MinFreeFraction: 0.20},
		MaxPartitions: 4, // the emulator can repeatedly repartition (paper §4)
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatalf("adaptive run died: %+v", res)
	}
	applied := 0
	for _, p := range res.Partitions {
		if !p.Rejected {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("expected at least two partitionings across the phase shift, got %d (%+v)",
			applied, res.Partitions)
	}
	// Compare with the single-partition prototype behaviour: it must also
	// survive here (the first offload of data1 frees enough), but the
	// multi-partition run adapts to the second phase.
	cfg.MaxPartitions = 1
	single, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.OOM {
		t.Fatalf("single-partition run died unexpectedly")
	}
}
