package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		App:          "Sample",
		HeapCapacity: 1 << 20,
		Classes: []ClassInfo{
			{Name: "ui", Pinned: true},
			{Name: "doc"},
			{Name: "arr", Array: true},
			{Name: "math", Pinned: true, Stateless: true},
		},
		Events: []Event{
			{Kind: KindCreate, Callee: 1, Obj: 1, Bytes: 100},
			{Kind: KindInvoke, Caller: 0, Callee: 1, Obj: 1, Bytes: 24, SelfTime: time.Millisecond},
			{Kind: KindCreate, Callee: 2, Obj: 2, Bytes: 4096},
			{Kind: KindAccess, Caller: 1, Callee: 2, Obj: 2, Bytes: 64},
			{Kind: KindInvoke, Caller: 1, Callee: 3, Obj: NoObject, Bytes: 16, SelfTime: time.Millisecond, Native: true, Stateless: true},
			{Kind: KindDelete, Callee: 2, Obj: 2, Bytes: 4096},
			{Kind: KindGC, Free: 1 << 19, Capacity: 1 << 20, Freed: true},
		},
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []func(*Trace){
		func(tr *Trace) { tr.Events[1].Callee = 99 },                   // class out of range
		func(tr *Trace) { tr.Events[1].Bytes = -1 },                    // negative bytes
		func(tr *Trace) { tr.Events[0].Obj = 2; tr.Events[2].Obj = 2 }, // double create
		func(tr *Trace) { tr.Events[5].Obj = 77 },                      // delete unknown
		func(tr *Trace) { tr.Events[5].Callee = 1 },                    // delete wrong class
		func(tr *Trace) { tr.Events[6].Free = -1 },                     // negative GC
		func(tr *Trace) { tr.Events[3].Kind = EventKind(42) },          // unknown kind
		func(tr *Trace) { tr.Events[0].Bytes = -5 },                    // negative size
	}
	for i, corrupt := range cases {
		tr := sampleTrace()
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: corruption not caught", i)
		}
	}
}

func TestRoundTripGob(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("gob round trip altered the trace")
	}
}

func TestRoundTripFile(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "sample.trace.gz")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round trip altered the trace")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestClassAccessor(t *testing.T) {
	tr := sampleTrace()
	if tr.Class(0).Name != "ui" {
		t.Fatal("Class(0) wrong")
	}
	if tr.Class(-1).Name != "" || tr.Class(99).Name != "" {
		t.Fatal("out-of-range class must be zero")
	}
}

func TestTotalSelfTime(t *testing.T) {
	if got := sampleTrace().TotalSelfTime(); got != 2*time.Millisecond {
		t.Fatalf("TotalSelfTime = %v", got)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(sampleTrace())
	if s.ClassEvents != 4 {
		t.Fatalf("ClassEvents = %d, want 4", s.ClassEvents)
	}
	if s.ObjectEvents != 3 { // 2 creates + 1 delete
		t.Fatalf("ObjectEvents = %d", s.ObjectEvents)
	}
	if s.ObjectsMax != 2 {
		t.Fatalf("ObjectsMax = %d", s.ObjectsMax)
	}
	if s.InteractionEvents != 3 || s.Invocations != 2 || s.Accesses != 1 {
		t.Fatalf("interactions = %d/%d/%d", s.InteractionEvents, s.Invocations, s.Accesses)
	}
	if s.LinksMax != 3 {
		t.Fatalf("LinksMax = %d, want 3 distinct pairs", s.LinksMax)
	}
	if s.PeakLiveBytes != 100+4096 {
		t.Fatalf("PeakLiveBytes = %d", s.PeakLiveBytes)
	}
	if s.BytesTransferred != 24+64+16 {
		t.Fatalf("BytesTransferred = %d", s.BytesTransferred)
	}
}

func TestStatsPeakNeverNegative(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Classes: []ClassInfo{{Name: "c"}}}
		live := map[ObjectID]int64{}
		var next ObjectID
		for i := 0; i < 200; i++ {
			if len(live) > 0 && r.Intn(2) == 0 {
				for id, sz := range live {
					tr.Events = append(tr.Events, Event{Kind: KindDelete, Callee: 0, Obj: id, Bytes: sz})
					delete(live, id)
					break
				}
			} else {
				next++
				sz := int64(r.Intn(1000))
				tr.Events = append(tr.Events, Event{Kind: KindCreate, Callee: 0, Obj: next, Bytes: sz})
				live[next] = sz
			}
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		s := ComputeStats(tr)
		return s.PeakLiveBytes >= 0 && s.ObjectsMax >= 0 && s.ObjectsAvg >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		KindInvoke: "invoke", KindAccess: "access", KindCreate: "create",
		KindDelete: "delete", KindGC: "gc", EventKind(99): "EventKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
