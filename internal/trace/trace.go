// Package trace defines AIDE's execution and resource traces.
//
// The paper's emulator replaces the Chai VM with a wrapper that plays back
// execution and resource traces into the monitoring, partitioning, and
// remote-invocation modules (paper §4). A trace records, per the
// instrumentation of §3.4, method invocations, data-field accesses, object
// creations and deletions, and garbage-collection reports, all at object
// level for aggregation to class level.
package trace

import (
	"fmt"
	"time"
)

// ClassID indexes a trace's class table.
type ClassID int32

// ObjectID identifies an object within a trace. IDs are unique for the
// lifetime of the trace (they are never reused after deletion).
type ObjectID int64

// NoObject marks events with no target object (e.g. static invocations).
const NoObject ObjectID = -1

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds, mirroring the JVM augmentation points of paper §3.4: method
// invocations, data field accesses, object creation, object deletion, plus
// garbage-collector resource reports.
const (
	KindInvoke EventKind = iota + 1
	KindAccess
	KindCreate
	KindDelete
	KindGC
)

// String returns the kind's name.
func (k EventKind) String() string {
	switch k {
	case KindInvoke:
		return "invoke"
	case KindAccess:
		return "access"
	case KindCreate:
		return "create"
	case KindDelete:
		return "delete"
	case KindGC:
		return "gc"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// ClassInfo describes one class in a trace.
type ClassInfo struct {
	Name string

	// Pinned marks classes that cannot be offloaded: classes with native
	// methods or host-specific static data (paper §3.2).
	Pinned bool

	// Array marks primitive-array pseudo-classes, eligible for the §5.2
	// object-granularity placement enhancement.
	Array bool

	// Stateless marks pinned classes whose native methods are all
	// stateless/idempotent (math, string copy): their invocations execute
	// locally under the §5.2 native enhancement.
	Stateless bool
}

// Event is one execution or resource event. A single struct with a Kind
// discriminator keeps traces gob-friendly and allocation-light.
type Event struct {
	Kind EventKind

	// Caller and Callee identify the interacting classes for invoke and
	// access events; Callee alone identifies the class for create/delete.
	Caller ClassID
	Callee ClassID

	// Obj is the target object of an invoke/access, or the created/deleted
	// object. NoObject when not applicable.
	Obj ObjectID

	// Bytes is the information transferred by an interaction (parameters
	// and return values), or the object size for create/delete.
	Bytes int64

	// SelfTime is the execution time attributable to the callee for this
	// invocation, exclusive of nested calls (paper Figure 9), measured at
	// client CPU speed.
	SelfTime time.Duration

	// Native marks invocations that resolve to a native method.
	Native bool

	// Stateless marks native invocations that are stateless/idempotent
	// (string copy, math functions), which the §5.2 enhancement may execute
	// on the device where they are invoked.
	Stateless bool

	// Free and Capacity report heap state for GC events; Freed reports
	// whether the cycle reclaimed anything.
	Free     int64
	Capacity int64
	Freed    bool
}

// Trace is a recorded application execution.
type Trace struct {
	// App names the recorded application (e.g. "JavaNote").
	App string

	// HeapCapacity is the Java heap size, in bytes, under which the trace
	// was recorded.
	HeapCapacity int64

	// Classes is the class table; ClassIDs index it.
	Classes []ClassInfo

	// Events is the serial event stream. Distributed execution of a trace
	// is assumed equivalent to serial execution (paper §4).
	Events []Event
}

// Validate checks internal consistency: class references in range, sizes
// non-negative, deletes matching live creates.
func (t *Trace) Validate() error {
	n := ClassID(len(t.Classes))
	live := make(map[ObjectID]ClassID)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case KindInvoke, KindAccess:
			if e.Caller < 0 || e.Caller >= n || e.Callee < 0 || e.Callee >= n {
				return fmt.Errorf("trace: event %d (%s) references class out of range", i, e.Kind)
			}
			if e.Bytes < 0 {
				return fmt.Errorf("trace: event %d has negative bytes", i)
			}
		case KindCreate:
			if e.Callee < 0 || e.Callee >= n {
				return fmt.Errorf("trace: event %d creates class out of range", i)
			}
			if e.Bytes < 0 {
				return fmt.Errorf("trace: event %d creates negative size", i)
			}
			if _, ok := live[e.Obj]; ok {
				return fmt.Errorf("trace: event %d re-creates live object %d", i, e.Obj)
			}
			live[e.Obj] = e.Callee
		case KindDelete:
			cls, ok := live[e.Obj]
			if !ok {
				return fmt.Errorf("trace: event %d deletes unknown object %d", i, e.Obj)
			}
			if cls != e.Callee {
				return fmt.Errorf("trace: event %d deletes object %d with class %d, created as %d", i, e.Obj, e.Callee, cls)
			}
			delete(live, e.Obj)
		case KindGC:
			if e.Capacity < 0 || e.Free < 0 {
				return fmt.Errorf("trace: event %d has negative GC figures", i)
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// Class returns the class info for the ID, or a zero ClassInfo if out of
// range.
func (t *Trace) Class(id ClassID) ClassInfo {
	if id < 0 || int(id) >= len(t.Classes) {
		return ClassInfo{}
	}
	return t.Classes[id]
}

// TotalSelfTime returns the sum of all invocation self-times: the
// trace-implied execution time of the application on the client alone.
func (t *Trace) TotalSelfTime() time.Duration {
	var total time.Duration
	for i := range t.Events {
		total += t.Events[i].SelfTime
	}
	return total
}
