package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Write serializes the trace to w in gob format.
func Write(w io.Writer, t *Trace) error {
	if err := gob.NewEncoder(w).Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Read deserializes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// WriteFile writes the trace to path, gzip-compressed.
func WriteFile(path string, t *Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	if err := Write(zw, t); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: gzip close: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadFile reads a gzip-compressed trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("trace: gzip open %s: %w", path, err)
	}
	defer zr.Close()
	return Read(zr)
}
