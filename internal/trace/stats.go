package trace

import "time"

// Stats summarizes a trace the way the paper's Table 2 reports JavaNote's
// execution metrics: for classes, objects, and interactions it reports the
// average and maximum live/link count over the execution plus the total
// number of events.
type Stats struct {
	// ClassesAvg/Max track the number of classes seen so far, sampled at
	// every event; ClassEvents is the total number of class events
	// (loads).
	ClassesAvg  float64
	ClassesMax  int64
	ClassEvents int64

	// ObjectsAvg/Max track live objects; ObjectEvents counts creations and
	// deletions.
	ObjectsAvg   float64
	ObjectsMax   int64
	ObjectEvents int64

	// LinksAvg/Max track the number of distinct inter-class interaction
	// links in the execution graph; InteractionEvents counts invocation
	// and access events (paper: "the average number of links
	// (interactions) is much smaller than the number of interaction
	// events").
	LinksAvg          float64
	LinksMax          int64
	InteractionEvents int64

	// Invocations and Accesses break down InteractionEvents.
	Invocations int64
	Accesses    int64

	// BytesTransferred is the total information exchanged between classes.
	BytesTransferred int64

	// PeakLiveBytes is the maximum live heap occupancy implied by
	// creates/deletes.
	PeakLiveBytes int64

	// SelfTime is the total trace-implied client execution time.
	SelfTime time.Duration
}

type linkKey struct{ a, b ClassID }

// ComputeStats scans the trace once and returns its summary.
func ComputeStats(t *Trace) Stats {
	var s Stats
	classesSeen := make(map[ClassID]bool, len(t.Classes))
	links := make(map[linkKey]bool)
	var liveObjects, liveBytes int64
	var sumClasses, sumObjects, sumLinks float64
	var samples int64

	note := func(c ClassID) {
		if !classesSeen[c] {
			classesSeen[c] = true
			s.ClassEvents++
		}
	}
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case KindInvoke, KindAccess:
			note(e.Caller)
			note(e.Callee)
			if e.Caller != e.Callee {
				a, b := e.Caller, e.Callee
				if a > b {
					a, b = b, a
				}
				links[linkKey{a, b}] = true
				s.InteractionEvents++
				s.BytesTransferred += e.Bytes
				if e.Kind == KindInvoke {
					s.Invocations++
				} else {
					s.Accesses++
				}
			}
			s.SelfTime += e.SelfTime
		case KindCreate:
			note(e.Callee)
			liveObjects++
			liveBytes += e.Bytes
			s.ObjectEvents++
			if liveObjects > s.ObjectsMax {
				s.ObjectsMax = liveObjects
			}
			if liveBytes > s.PeakLiveBytes {
				s.PeakLiveBytes = liveBytes
			}
		case KindDelete:
			liveObjects--
			liveBytes -= e.Bytes
			s.ObjectEvents++
		case KindGC:
			// Resource events do not contribute to execution metrics.
			continue
		}
		if int64(len(classesSeen)) > s.ClassesMax {
			s.ClassesMax = int64(len(classesSeen))
		}
		if int64(len(links)) > s.LinksMax {
			s.LinksMax = int64(len(links))
		}
		sumClasses += float64(len(classesSeen))
		sumObjects += float64(liveObjects)
		sumLinks += float64(len(links))
		samples++
	}
	if samples > 0 {
		s.ClassesAvg = sumClasses / float64(samples)
		s.ObjectsAvg = sumObjects / float64(samples)
		s.LinksAvg = sumLinks / float64(samples)
	}
	return s
}
