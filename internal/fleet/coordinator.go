// Package fleet places tenant sessions across a pool of surrogates. The
// paper's client picks one nearby surrogate (§2); a production platform
// runs a fleet of unequal helpers, so placement becomes a scheduling
// decision: rank candidates by probe RTT bucket and live occupancy
// (admitted sessions, free heap), break ties deterministically, and feed
// admission rejections back so a saturated surrogate falls out of the
// rotation until the next refresh. Every ranking is a pure function of
// the status snapshot, which makes placement replay-testable.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aide"
	"aide/internal/remote"
)

// Status is one surrogate's placement inputs: the probe round trip, the
// admitted session count, and the shared heap occupancy. A target that
// could not be probed carries a non-nil Err and ranks last.
type Status struct {
	Name          string
	RTT           time.Duration
	Sessions      int64
	FreeBytes     int64
	CapacityBytes int64
	Err           error
}

// Target is one surrogate the coordinator can place sessions on.
type Target interface {
	// Name identifies the target; rankings tie-break on it, so names
	// must be unique within a coordinator.
	Name() string
	// Status probes the target's placement inputs.
	Status(ctx context.Context) Status
	// Dial opens a fresh session transport to the target.
	Dial(ctx context.Context) (remote.Transport, error)
}

// LocalTarget serves an in-process surrogate over channel transports:
// the fleet shape used by the load generator and tests, where thousands
// of sessions must not consume file descriptors. SyntheticRTT stands in
// for the network round trip a real deployment would measure.
type LocalTarget struct {
	TargetName   string
	Surrogate    *aide.Surrogate
	SyntheticRTT time.Duration
}

// Name implements Target.
func (t *LocalTarget) Name() string { return t.TargetName }

// Status implements Target by reading the surrogate directly.
func (t *LocalTarget) Status(ctx context.Context) Status {
	if err := ctx.Err(); err != nil {
		return Status{Name: t.TargetName, Err: err}
	}
	h := t.Surrogate.Heap()
	return Status{
		Name:          t.TargetName,
		RTT:           t.SyntheticRTT,
		Sessions:      int64(t.Surrogate.Sessions()),
		FreeBytes:     h.Free,
		CapacityBytes: h.Capacity,
	}
}

// Dial implements Target with an in-memory channel pair.
func (t *LocalTarget) Dial(ctx context.Context) (remote.Transport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ct, st := remote.NewChannelPair()
	t.Surrogate.Serve(st)
	return ct, nil
}

// TCPTarget is a surrogate reached over the network, probed with the
// same MsgInfo sweep AttachBestTCP uses.
type TCPTarget struct {
	Addr string
}

// Name implements Target.
func (t *TCPTarget) Name() string { return t.Addr }

// Status implements Target via a probe dial.
func (t *TCPTarget) Status(ctx context.Context) Status {
	p := aide.ProbeSurrogatesContext(ctx, []string{t.Addr})[0]
	if p.Err != nil {
		return Status{Name: t.Addr, Err: p.Err}
	}
	return Status{
		Name:          t.Addr,
		RTT:           p.Info.RTT,
		Sessions:      p.Info.Sessions,
		FreeBytes:     p.Info.FreeBytes,
		CapacityBytes: p.Info.CapacityBytes,
	}
}

// Dial implements Target with a TCP connection.
func (t *TCPTarget) Dial(ctx context.Context) (remote.Transport, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", t.Addr, err)
	}
	return remote.NewConnTransport(conn), nil
}

// Rank orders statuses best-first: reachable before failed, lower RTT
// bucket (500 µs, matching RankSurrogates) first, then fewer loaded
// sessions (status sessions plus the pending placements the caller has
// made since the snapshot), then larger free heap fraction, then
// lexicographic name. Pure: same statuses and pending always produce the
// same order, so placement is replayable.
func Rank(statuses []Status, pending map[string]int64) []Status {
	out := append([]Status(nil), statuses...)
	bucket := func(d time.Duration) int64 { return int64(d / (500 * time.Microsecond)) }
	frac := func(s Status) float64 {
		if s.CapacityBytes <= 0 {
			return 0
		}
		return float64(s.FreeBytes) / float64(s.CapacityBytes)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Err == nil) != (b.Err == nil) {
			return a.Err == nil
		}
		if a.Err != nil {
			return a.Name < b.Name
		}
		if ba, bb := bucket(a.RTT), bucket(b.RTT); ba != bb {
			return ba < bb
		}
		la, lb := a.Sessions+pending[a.Name], b.Sessions+pending[b.Name]
		if la != lb {
			return la < lb
		}
		if fa, fb := frac(a), frac(b); fa != fb {
			return fa > fb
		}
		return a.Name < b.Name
	})
	return out
}

// Coordinator tracks a fleet of targets and places sessions across them.
// Refresh snapshots every target's status; between refreshes, Place
// ranks the snapshot plus its own pending-placement counts, and a typed
// admission rejection benches the target until the next refresh.
type Coordinator struct {
	mu       sync.Mutex
	targets  []Target
	byName   map[string]Target
	status   map[string]Status
	pending  map[string]int64
	benched  map[string]bool
	placed   int64
	rejected int64
}

// New builds a coordinator over the given targets. Call Refresh before
// the first placement.
func New(targets ...Target) *Coordinator {
	c := &Coordinator{
		targets: append([]Target(nil), targets...),
		byName:  make(map[string]Target, len(targets)),
		status:  make(map[string]Status),
		pending: make(map[string]int64),
		benched: make(map[string]bool),
	}
	for _, t := range c.targets {
		c.byName[t.Name()] = t
	}
	return c
}

// Refresh probes every target concurrently, replaces the status
// snapshot, and clears the pending counts and the admission bench. It
// returns the fresh statuses in target order.
func (c *Coordinator) Refresh(ctx context.Context) []Status {
	c.mu.Lock()
	targets := append([]Target(nil), c.targets...)
	c.mu.Unlock()
	statuses := make([]Status, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			statuses[i] = t.Status(ctx)
		}(i, t)
	}
	wg.Wait()
	c.mu.Lock()
	c.status = make(map[string]Status, len(statuses))
	for _, st := range statuses {
		c.status[st.Name] = st
	}
	c.pending = make(map[string]int64)
	c.benched = make(map[string]bool)
	c.mu.Unlock()
	return statuses
}

// Candidates returns the targets ranked best-first under the latest
// snapshot, excluding targets benched by admission rejections.
func (c *Coordinator) Candidates() []Target {
	c.mu.Lock()
	statuses := make([]Status, 0, len(c.status))
	for name, st := range c.status {
		if !c.benched[name] {
			statuses = append(statuses, st)
		}
	}
	pending := make(map[string]int64, len(c.pending))
	for name, n := range c.pending {
		pending[name] = n
	}
	c.mu.Unlock()
	ranked := Rank(statuses, pending)
	out := make([]Target, 0, len(ranked))
	for _, st := range ranked {
		if st.Err != nil {
			continue
		}
		if t := c.lookup(st.Name); t != nil {
			out = append(out, t)
		}
	}
	return out
}

func (c *Coordinator) lookup(name string) Target {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// NotePlaced records a successful placement on the named target: its
// effective load rises by one session until the next refresh.
func (c *Coordinator) NotePlaced(name string) {
	c.mu.Lock()
	c.pending[name]++
	c.placed++
	c.mu.Unlock()
}

// NoteRejected benches the named target until the next refresh: its
// admission control is refusing sessions, so re-offering it placements
// only burns round trips.
func (c *Coordinator) NoteRejected(name string) {
	c.mu.Lock()
	c.benched[name] = true
	c.rejected++
	c.mu.Unlock()
}

// Placements reports how many placements and admission rejections the
// coordinator has recorded over its lifetime.
func (c *Coordinator) Placements() (placed, rejected int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placed, c.rejected
}

// Place walks the ranked candidates, running attach against each until
// one accepts the session. A typed admission rejection or shed benches
// the candidate and falls through to the next; transport failures fall
// through without benching (the next refresh re-probes them). The error
// wraps the last failure when every candidate refuses.
func (c *Coordinator) Place(ctx context.Context, attach func(Target) error) (Target, error) {
	cands := c.Candidates()
	if len(cands) == 0 {
		return nil, errors.New("fleet: no placement candidates (refresh first, or every target is benched)")
	}
	var lastErr error
	for _, t := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := attach(t)
		if err == nil {
			c.NotePlaced(t.Name())
			return t, nil
		}
		lastErr = err
		if errors.Is(err, remote.ErrAdmissionRejected) || errors.Is(err, remote.ErrShed) {
			c.NoteRejected(t.Name())
		}
	}
	return nil, fmt.Errorf("fleet: no target admitted the session: %w", lastErr)
}
