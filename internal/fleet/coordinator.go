// Package fleet places tenant sessions across a pool of surrogates. The
// paper's client picks one nearby surrogate (§2); a production platform
// runs a fleet of unequal helpers, so placement becomes a scheduling
// decision: rank candidates by probe RTT bucket and live occupancy
// (admitted sessions, free heap), break ties deterministically, and feed
// admission rejections back so a saturated surrogate falls out of the
// rotation until the next refresh. Every ranking is a pure function of
// the status snapshot, which makes placement replay-testable.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aide"
	"aide/internal/remote"
	"aide/internal/vm"
)

// Status is one surrogate's placement inputs: the probe round trip, the
// admitted session count, and the shared heap occupancy. A target that
// could not be probed carries a non-nil Err and ranks last.
type Status struct {
	Name          string
	RTT           time.Duration
	Sessions      int64
	FreeBytes     int64
	CapacityBytes int64
	Err           error
}

// Target is one surrogate the coordinator can place sessions on.
type Target interface {
	// Name identifies the target; rankings tie-break on it, so names
	// must be unique within a coordinator.
	Name() string
	// Status probes the target's placement inputs.
	Status(ctx context.Context) Status
	// Dial opens a fresh session transport to the target.
	Dial(ctx context.Context) (remote.Transport, error)
}

// LocalTarget serves an in-process surrogate over channel transports:
// the fleet shape used by the load generator and tests, where thousands
// of sessions must not consume file descriptors. SyntheticRTT stands in
// for the network round trip a real deployment would measure.
type LocalTarget struct {
	TargetName   string
	Surrogate    *aide.Surrogate
	SyntheticRTT time.Duration
}

// Name implements Target.
func (t *LocalTarget) Name() string { return t.TargetName }

// Status implements Target by reading the surrogate directly.
func (t *LocalTarget) Status(ctx context.Context) Status {
	if err := ctx.Err(); err != nil {
		return Status{Name: t.TargetName, Err: err}
	}
	h := t.Surrogate.Heap()
	return Status{
		Name:          t.TargetName,
		RTT:           t.SyntheticRTT,
		Sessions:      int64(t.Surrogate.Sessions()),
		FreeBytes:     h.Free,
		CapacityBytes: h.Capacity,
	}
}

// Dial implements Target with an in-memory channel pair.
func (t *LocalTarget) Dial(ctx context.Context) (remote.Transport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ct, st := remote.NewChannelPair()
	t.Surrogate.Serve(st)
	return ct, nil
}

// Drainer is an optional Target capability: order the target to hand
// every live session off to the surrogate addressed by dest. Clients
// observe the handoff as a bounded latency bump, not an error.
type Drainer interface {
	DrainSessions(ctx context.Context, dest string) error
}

// DrainSessions implements Drainer by draining the in-process surrogate
// directly.
func (t *LocalTarget) DrainSessions(ctx context.Context, dest string) error {
	_, err := t.Surrogate.Drain(ctx, dest)
	return err
}

// TCPTarget is a surrogate reached over the network, probed with the
// same MsgInfo sweep AttachBestTCP uses. DrainKey is the fleet's drain
// credential: it must match the surrogate's WithDrainKey for
// DrainSessions to be honored (surrogates refuse unauthenticated wire
// drain directives).
type TCPTarget struct {
	Addr     string
	DrainKey string
}

// Name implements Target.
func (t *TCPTarget) Name() string { return t.Addr }

// Status implements Target via a probe dial.
func (t *TCPTarget) Status(ctx context.Context) Status {
	p := aide.ProbeSurrogatesContext(ctx, []string{t.Addr})[0]
	if p.Err != nil {
		return Status{Name: t.Addr, Err: p.Err}
	}
	return Status{
		Name:          t.Addr,
		RTT:           p.Info.RTT,
		Sessions:      p.Info.Sessions,
		FreeBytes:     p.Info.FreeBytes,
		CapacityBytes: p.Info.CapacityBytes,
	}
}

// Dial implements Target with a TCP connection.
func (t *TCPTarget) Dial(ctx context.Context) (remote.Transport, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", t.Addr, err)
	}
	return remote.NewConnTransport(conn), nil
}

// DrainSessions implements Drainer over the wire: a throwaway directive
// connection (the same shape the probe sweep uses) carries the drain
// order and blocks until the surrogate reports the drain done.
func (t *TCPTarget) DrainSessions(ctx context.Context, dest string) error {
	tr, err := t.Dial(ctx)
	if err != nil {
		return err
	}
	v := vm.New(vm.NewRegistry(), vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 16})
	peer := remote.NewPeer(v, tr, remote.Options{Workers: 1})
	err = peer.DrainRemote(ctx, dest, []byte(t.DrainKey))
	if cerr := peer.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("fleet: drain %s -> %s: %w", t.Addr, dest, err)
	}
	return nil
}

// Rank orders statuses best-first: reachable before failed, lower RTT
// bucket (500 µs, matching RankSurrogates) first, then fewer loaded
// sessions (status sessions plus the pending placements the caller has
// made since the snapshot), then larger free heap fraction, then
// lexicographic name. Pure: same statuses and pending always produce the
// same order, so placement is replayable.
func Rank(statuses []Status, pending map[string]int64) []Status {
	out := append([]Status(nil), statuses...)
	bucket := func(d time.Duration) int64 { return int64(d / (500 * time.Microsecond)) }
	frac := func(s Status) float64 {
		if s.CapacityBytes <= 0 {
			return 0
		}
		return float64(s.FreeBytes) / float64(s.CapacityBytes)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Err == nil) != (b.Err == nil) {
			return a.Err == nil
		}
		if a.Err != nil {
			return a.Name < b.Name
		}
		if ba, bb := bucket(a.RTT), bucket(b.RTT); ba != bb {
			return ba < bb
		}
		la, lb := a.Sessions+pending[a.Name], b.Sessions+pending[b.Name]
		if la != lb {
			return la < lb
		}
		if fa, fb := frac(a), frac(b); fa != fb {
			return fa > fb
		}
		return a.Name < b.Name
	})
	return out
}

// Coordinator tracks a fleet of targets and places sessions across them.
// Refresh snapshots every target's status; between refreshes, Place
// ranks the snapshot plus its own pending-placement counts, and a typed
// admission rejection benches the target until the next refresh.
type Coordinator struct {
	mu       sync.Mutex
	targets  []Target
	byName   map[string]Target
	status   map[string]Status
	pending  map[string]int64
	benched  map[string]bool
	placed   int64
	rejected int64
	drained  int64
}

// New builds a coordinator over the given targets. Call Refresh before
// the first placement.
func New(targets ...Target) *Coordinator {
	c := &Coordinator{
		targets: append([]Target(nil), targets...),
		byName:  make(map[string]Target, len(targets)),
		status:  make(map[string]Status),
		pending: make(map[string]int64),
		benched: make(map[string]bool),
	}
	for _, t := range c.targets {
		c.byName[t.Name()] = t
	}
	return c
}

// Refresh probes every target concurrently, replaces the status
// snapshot, and clears the pending counts and the admission bench. It
// returns the fresh statuses in target order.
func (c *Coordinator) Refresh(ctx context.Context) []Status {
	c.mu.Lock()
	targets := append([]Target(nil), c.targets...)
	c.mu.Unlock()
	statuses := make([]Status, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			statuses[i] = t.Status(ctx)
		}(i, t)
	}
	wg.Wait()
	c.mu.Lock()
	c.status = make(map[string]Status, len(statuses))
	for _, st := range statuses {
		c.status[st.Name] = st
	}
	c.pending = make(map[string]int64)
	c.benched = make(map[string]bool)
	c.mu.Unlock()
	return statuses
}

// Candidates returns the targets ranked best-first under the latest
// snapshot, excluding targets benched by admission rejections.
func (c *Coordinator) Candidates() []Target {
	c.mu.Lock()
	statuses := make([]Status, 0, len(c.status))
	for name, st := range c.status {
		if !c.benched[name] {
			statuses = append(statuses, st)
		}
	}
	pending := make(map[string]int64, len(c.pending))
	for name, n := range c.pending {
		pending[name] = n
	}
	c.mu.Unlock()
	ranked := Rank(statuses, pending)
	out := make([]Target, 0, len(ranked))
	for _, st := range ranked {
		if st.Err != nil {
			continue
		}
		if t := c.lookup(st.Name); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// TargetNames returns every target's name in registration order,
// benched or not.
func (c *Coordinator) TargetNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.targets))
	for i, t := range c.targets {
		names[i] = t.Name()
	}
	return names
}

func (c *Coordinator) lookup(name string) Target {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// NotePlaced records a successful placement on the named target: its
// effective load rises by one session until the next refresh.
func (c *Coordinator) NotePlaced(name string) {
	c.mu.Lock()
	c.pending[name]++
	c.placed++
	c.mu.Unlock()
}

// NoteRejected benches the named target until the next refresh: its
// admission control is refusing sessions, so re-offering it placements
// only burns round trips.
func (c *Coordinator) NoteRejected(name string) {
	c.mu.Lock()
	c.benched[name] = true
	c.rejected++
	c.mu.Unlock()
}

// Placements reports how many placements and admission rejections the
// coordinator has recorded over its lifetime.
func (c *Coordinator) Placements() (placed, rejected int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placed, c.rejected
}

// Drain empties the named target: it picks the best-ranked other
// candidate as the destination, orders the drain (the target must
// implement Drainer), and benches the drained target until the next
// refresh so no new session lands on it mid-evacuation. It returns the
// destination's name. Live sessions move via snapshot handoff; their
// clients re-home to the destination without an application-visible
// error.
func (c *Coordinator) Drain(ctx context.Context, from string) (string, error) {
	src := c.lookup(from)
	if src == nil {
		return "", fmt.Errorf("fleet: drain: unknown target %q", from)
	}
	dr, ok := src.(Drainer)
	if !ok {
		return "", fmt.Errorf("fleet: drain: target %q cannot drain", from)
	}
	var dest Target
	for _, t := range c.Candidates() {
		if t.Name() != from {
			dest = t
			break
		}
	}
	if dest == nil {
		return "", errors.New("fleet: drain: no destination candidate besides the drained target")
	}
	// Bench first: placements racing the drain must not land sessions on
	// the target while it is evacuating (its gate would bounce them, but
	// benching saves the round trip).
	c.mu.Lock()
	c.benched[from] = true
	c.mu.Unlock()
	if err := dr.DrainSessions(ctx, dest.Name()); err != nil {
		return "", err
	}
	c.mu.Lock()
	c.drained++
	c.mu.Unlock()
	return dest.Name(), nil
}

// Drains reports how many successful target drains the coordinator has
// ordered over its lifetime.
func (c *Coordinator) Drains() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drained
}

// Place walks the ranked candidates, running attach against each until
// one accepts the session. A typed admission rejection or shed benches
// the candidate and falls through to the next; transport failures fall
// through without benching (the next refresh re-probes them). The error
// wraps the last failure when every candidate refuses.
func (c *Coordinator) Place(ctx context.Context, attach func(Target) error) (Target, error) {
	cands := c.Candidates()
	if len(cands) == 0 {
		return nil, errors.New("fleet: no placement candidates (refresh first, or every target is benched)")
	}
	var lastErr error
	for _, t := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := attach(t)
		if err == nil {
			c.NotePlaced(t.Name())
			return t, nil
		}
		lastErr = err
		// A draining surrogate refuses new sessions exactly like a full
		// one; bench it alongside admission rejections and sheds.
		if errors.Is(err, remote.ErrAdmissionRejected) || errors.Is(err, remote.ErrShed) ||
			errors.Is(err, remote.ErrDrained) {
			c.NoteRejected(t.Name())
		}
	}
	return nil, fmt.Errorf("fleet: no target admitted the session: %w", lastErr)
}
