package fleet

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain extends the repo's goroutine-leak gate to the fleet package:
// every goroutine the coordinator (concurrent refresh probes), the load
// generator (worker pool), and the surrogates under test spawn must have
// joined by the time the package tests finish.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := settleGoroutines(before); leaked > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines outlived the package tests (started with %d)\n",
				leaked, before)
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, tolerating runtime-internal stragglers (finalizer, netpoll)
// that need a few scheduler rounds to park. Returns the number still
// above baseline after the grace period.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			if n <= baseline {
				return 0
			}
			return n - baseline
		}
		time.Sleep(20 * time.Millisecond)
	}
}
