package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aide"
	"aide/internal/remote"
)

// liveSession is one handoff-capable tenant: a full aide.Client whose
// dialer resolves fleet target names, holding one offloaded Acct object
// with a session-unique balance.
type liveSession struct {
	client *aide.Client
	th     *aide.Thread
	obj    aide.ObjectID
	target string
	base   int64
	adds   int64
}

// place attaches a fresh live session through the coordinator and
// offloads its object to whichever target Place picked.
func place(t *testing.T, coord *Coordinator, reg *aide.Registry, id int) *liveSession {
	t.Helper()
	ls := &liveSession{base: int64(id+1) * 1_000_000}
	ls.client = aide.NewClient(reg,
		aide.WithHeap(64<<10),
		aide.WithCallTimeout(5*time.Second),
		aide.WithDialer(func(ctx context.Context, name string) (remote.Transport, error) {
			tg := coord.lookup(name)
			if tg == nil {
				return nil, fmt.Errorf("fleet: handoff to unknown target %q", name)
			}
			return tg.Dial(ctx)
		}),
	)
	t.Cleanup(func() { _ = ls.client.Close() })
	ctx := context.Background()
	target, err := coord.Place(ctx, func(tg Target) error {
		tr, derr := tg.Dial(ctx)
		if derr != nil {
			return derr
		}
		return ls.client.AttachContext(ctx, tr)
	})
	if err != nil {
		t.Fatalf("place session %d: %v", id, err)
	}
	ls.target = target.Name()
	ls.th = ls.client.Thread()
	if ls.obj, err = ls.th.New(WorkloadClass, 16<<10); err != nil {
		t.Fatalf("new %s: %v", WorkloadClass, err)
	}
	ls.client.VM().SetRoot("acct", ls.obj)
	if err := ls.th.SetField(ls.obj, "bal", aide.Int(ls.base)); err != nil {
		t.Fatalf("seed balance: %v", err)
	}
	ls.add(t) // one interaction so the monitor has a graph to partition
	if _, err := ls.client.Offload(); err != nil {
		t.Fatalf("offload session %d: %v", id, err)
	}
	return ls
}

// add runs one increment and asserts the session's exactly-once
// cumulative sequence — any lost, repeated, or cross-tenant increment
// breaks the arithmetic on the spot.
func (ls *liveSession) add(t *testing.T) {
	t.Helper()
	v, err := ls.th.Invoke(ls.obj, "add", aide.Int(1))
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	ls.adds++
	if want := ls.base + ls.adds; v.I != want {
		t.Fatalf("add returned %d, want %d (lost or duplicated an increment)", v.I, want)
	}
}

// waitIdle waits for the surrogate's asynchronous session reaping.
func waitIdle(t *testing.T, s *aide.Surrogate) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := s.Sessions(); n != 0 {
		t.Fatalf("surrogate still holds %d sessions", n)
	}
}

// TestCoordinatorDrainInterleavings drives the drain/re-place
// interleavings as a table: each scenario interleaves live sessions,
// Coordinator.Drain orders, and fresh placements, asserting zero
// cross-tenant corruption and exact session ledgers throughout.
func TestCoordinatorDrainInterleavings(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, coord *Coordinator, surrogates []*aide.Surrogate, reg *aide.Registry)
	}{
		{
			// Drain with a live session attached, then re-place: the session
			// must move whole, the drained target is benched for placements
			// until the next refresh, and the refresh re-admits it.
			name: "drain-then-replace",
			run: func(t *testing.T, coord *Coordinator, surrogates []*aide.Surrogate, reg *aide.Registry) {
				ls := place(t, coord, reg, 0)
				if ls.target != "a" {
					t.Fatalf("first session placed on %q, want a", ls.target)
				}
				dest, err := coord.Drain(context.Background(), "a")
				if err != nil {
					t.Fatalf("drain a: %v", err)
				}
				if dest != "b" {
					t.Fatalf("drain destination %q, want b", dest)
				}
				if got := surrogates[0].Stats().Drained; got != 1 {
					t.Fatalf("a drained sessions = %d, want 1", got)
				}
				waitIdle(t, surrogates[0])
				if n := surrogates[1].Sessions(); n != 1 {
					t.Fatalf("b holds %d sessions after the drain, want 1", n)
				}
				if n := ls.client.Handoffs(); n != 1 {
					t.Fatalf("client completed %d handoffs, want 1", n)
				}
				ls.add(t) // the moved session serves the same counter

				// a is benched: the next placement must land on b even though
				// a now looks emptier.
				ls2 := place(t, coord, reg, 1)
				if ls2.target != "b" {
					t.Fatalf("post-drain placement landed on %q, want b (a is benched)", ls2.target)
				}
				// A refresh clears the bench; a (zero sessions) ranks first.
				coord.Refresh(context.Background())
				ls3 := place(t, coord, reg, 2)
				if ls3.target != "a" {
					t.Fatalf("post-refresh placement landed on %q, want a", ls3.target)
				}
				for _, s := range []*liveSession{ls, ls2, ls3} {
					s.add(t)
				}
				if d := coord.Drains(); d != 1 {
					t.Fatalf("coordinator drains = %d, want 1", d)
				}
			},
		},
		{
			// Two sessions on the drained target must both move, and every
			// ledger (surrogate drained counters, client handoffs, session
			// counts) must balance exactly.
			name: "drain-moves-every-session",
			run: func(t *testing.T, coord *Coordinator, surrogates []*aide.Surrogate, reg *aide.Registry) {
				// Both sessions forced onto a: b is benched manually first.
				coord.NoteRejected("b")
				s1 := place(t, coord, reg, 0)
				s2 := place(t, coord, reg, 1)
				if s1.target != "a" || s2.target != "a" {
					t.Fatalf("sessions placed on %q/%q, want a/a", s1.target, s2.target)
				}
				coord.Refresh(context.Background())
				if _, err := coord.Drain(context.Background(), "a"); err != nil {
					t.Fatalf("drain a: %v", err)
				}
				if got := surrogates[0].Stats().Drained; got != 2 {
					t.Fatalf("a drained sessions = %d, want 2", got)
				}
				waitIdle(t, surrogates[0])
				if n := surrogates[1].Sessions(); n != 2 {
					t.Fatalf("b holds %d sessions, want 2", n)
				}
				// Both counters survived intact: no loss, no cross-tenant bleed.
				s1.add(t)
				s2.add(t)
				if s1.client.Handoffs() != 1 || s2.client.Handoffs() != 1 {
					t.Fatalf("handoffs = %d/%d, want 1/1", s1.client.Handoffs(), s2.client.Handoffs())
				}
			},
		},
		{
			// Draining an idle target succeeds (nothing to move) but still
			// benches it; errors cover the unknown target and the
			// single-candidate fleet.
			name: "drain-idle-and-errors",
			run: func(t *testing.T, coord *Coordinator, surrogates []*aide.Surrogate, reg *aide.Registry) {
				dest, err := coord.Drain(context.Background(), "a")
				if err != nil {
					t.Fatalf("drain idle a: %v", err)
				}
				if dest != "b" {
					t.Fatalf("idle drain destination %q, want b", dest)
				}
				if _, err := coord.Drain(context.Background(), "nope"); err == nil {
					t.Fatal("drain of an unknown target succeeded")
				}
				// With a benched and b the only candidate, draining b has no
				// destination left.
				if _, err := coord.Drain(context.Background(), "b"); err == nil {
					t.Fatal("drain with no destination candidate succeeded")
				}
				if d := coord.Drains(); d != 1 {
					t.Fatalf("coordinator drains = %d, want 1", d)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := workloadReg(t)
			surrogates := []*aide.Surrogate{
				aide.NewSurrogate(reg, aide.WithHeap(64<<20)),
				aide.NewSurrogate(reg, aide.WithHeap(64<<20)),
			}
			t.Cleanup(func() {
				for _, s := range surrogates {
					if err := s.Close(); err != nil {
						t.Errorf("close surrogate: %v", err)
					}
				}
			})
			coord := New(
				&LocalTarget{TargetName: "a", Surrogate: surrogates[0]},
				&LocalTarget{TargetName: "b", Surrogate: surrogates[1], SyntheticRTT: time.Millisecond},
			)
			coord.Refresh(context.Background())
			tc.run(t, coord, surrogates, reg)
		})
	}
}

// TestLoadgenDrainMidRun drains targets round-robin while the load
// generator hammers live sessions: every session must complete with its
// exact balance (zero cross-tenant corruption) despite sessions moving
// under it, and every surrogate must end the run empty — the exact
// release ledger.
func TestLoadgenDrainMidRun(t *testing.T) {
	coord, surrogates := newTestFleet(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, coord, workloadReg(t), Config{
		Sessions:        36,
		Concurrency:     6,
		Ops:             4,
		BytesPerSession: 8 << 10,
		DrainEvery:      9,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.CrossTenantFailures != 0 {
		t.Fatalf("cross-tenant failures = %d, want 0", r.CrossTenantFailures)
	}
	if r.Completed != 36 || r.Failed != 0 || r.Unplaced != 0 {
		t.Fatalf("completed/failed/unplaced = %d/%d/%d, want 36/0/0", r.Completed, r.Failed, r.Unplaced)
	}
	if r.Drains == 0 {
		t.Fatal("no drain completed mid-run: the interleaving never happened")
	}
	if r.DrainErrors != 0 {
		t.Fatalf("drain errors = %d, want 0", r.DrainErrors)
	}
	if r.Drains != coord.Drains() {
		t.Fatalf("report drains %d != coordinator ledger %d", r.Drains, coord.Drains())
	}
	var moved int64
	for _, s := range surrogates {
		moved += s.Stats().Drained
		waitIdle(t, s)
	}
	t.Logf("drains=%d sessions moved=%d", r.Drains, moved)
}

// TestPlaceBenchesDrainingTarget verifies the typed drain rejection
// benches a target exactly like an admission rejection: an attach that
// bounces off a draining gate with ErrDrained falls through to the next
// candidate and benches the drainer.
func TestPlaceBenchesDrainingTarget(t *testing.T) {
	coord, _ := newTestFleet(t, 2)
	coord.Refresh(context.Background())
	calls := 0
	target, err := coord.Place(context.Background(), func(tg Target) error {
		calls++
		if tg.Name() == "a" {
			return fmt.Errorf("attach: %w", remote.ErrDrained)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if target.Name() != "b" || calls != 2 {
		t.Fatalf("placed on %q after %d attempts, want b after 2", target.Name(), calls)
	}
	if _, rejected := coord.Placements(); rejected != 1 {
		t.Fatalf("rejected ledger = %d, want 1 (the drained bounce)", rejected)
	}
	// The bench holds: the next placement never re-offers a.
	calls = 0
	if _, err := coord.Place(context.Background(), func(tg Target) error {
		calls++
		if tg.Name() == "a" {
			return errors.New("a must be benched")
		}
		return nil
	}); err != nil {
		t.Fatalf("second place: %v", err)
	}
	if calls != 1 {
		t.Fatalf("second place tried %d candidates, want 1 (a benched)", calls)
	}
}
