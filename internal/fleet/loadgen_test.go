package fleet

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"aide"
)

// newTestFleet builds n in-process surrogates sharing one workload
// registry and returns them with a coordinator. The caller owns Close.
func newTestFleet(t *testing.T, n int, opts ...aide.Option) (*Coordinator, []*aide.Surrogate) {
	t.Helper()
	reg, err := WorkloadRegistry()
	if err != nil {
		t.Fatalf("workload registry: %v", err)
	}
	surrogates := make([]*aide.Surrogate, n)
	targets := make([]Target, n)
	for i := range surrogates {
		surrogates[i] = aide.NewSurrogate(reg, append([]aide.Option{aide.WithHeap(64 << 20)}, opts...)...)
		targets[i] = &LocalTarget{TargetName: string(rune('a' + i)), Surrogate: surrogates[i]}
	}
	t.Cleanup(func() {
		for _, s := range surrogates {
			if err := s.Close(); err != nil {
				t.Errorf("close surrogate: %v", err)
			}
		}
	})
	return New(targets...), surrogates
}

func workloadReg(t *testing.T) *aide.Registry {
	t.Helper()
	reg, err := WorkloadRegistry()
	if err != nil {
		t.Fatalf("workload registry: %v", err)
	}
	return reg
}

// TestLoadgenSingleSurrogate is the ISSUE's headline isolation claim: one
// surrogate sustains >= 100 concurrent tenant sessions with zero
// cross-tenant failures. Every session writes a session-unique balance,
// hammers it remotely, and reads it back; any bleed between tenant heaps
// shows up as a balance mismatch.
func TestLoadgenSingleSurrogate(t *testing.T) {
	coord, surrogates := newTestFleet(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, coord, workloadReg(t), Config{
		Sessions:        120,
		Concurrency:     120, // all sessions genuinely in flight at once
		Ops:             4,
		BytesPerSession: 8 << 10,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.CrossTenantFailures != 0 {
		t.Fatalf("cross-tenant failures = %d, want 0", r.CrossTenantFailures)
	}
	if r.Completed != 120 || r.Failed != 0 || r.Unplaced != 0 {
		t.Fatalf("completed/failed/unplaced = %d/%d/%d, want 120/0/0", r.Completed, r.Failed, r.Unplaced)
	}
	if r.Rejected != 0 || r.Shed != 0 {
		t.Fatalf("rejected/shed = %d/%d, want 0/0 (no caps configured)", r.Rejected, r.Shed)
	}
	stats := surrogates[0].Stats()
	if stats.Admitted != 120 {
		t.Fatalf("surrogate admitted = %d, want 120", stats.Admitted)
	}
	// Session reaping is asynchronous (the surrogate observes the peer
	// drop after the client's Close returns), so give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for surrogates[0].Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := surrogates[0].Sessions(); got != 0 {
		t.Fatalf("sessions still attached after run = %d, want 0", got)
	}
	if r.SessionP50 <= 0 || r.SessionP99 < r.SessionP50 {
		t.Fatalf("implausible session percentiles: p50=%v p99=%v", r.SessionP50, r.SessionP99)
	}
	if r.OpP50 <= 0 || r.OpP99 < r.OpP50 {
		t.Fatalf("implausible op percentiles: p50=%v p99=%v", r.OpP50, r.OpP99)
	}
}

// TestLoadgenSpreadsFleet verifies placement actually spreads load: with
// two equal surrogates the pending-load ranking must not dogpile one.
func TestLoadgenSpreadsFleet(t *testing.T) {
	coord, _ := newTestFleet(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, coord, workloadReg(t), Config{
		Sessions:        64,
		Concurrency:     16,
		Ops:             2,
		BytesPerSession: 8 << 10,
		RefreshEvery:    16,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Completed != 64 || r.CrossTenantFailures != 0 {
		t.Fatalf("completed = %d (cross-tenant %d), want 64 (0)", r.Completed, r.CrossTenantFailures)
	}
	for _, name := range []string{"a", "b"} {
		if r.Placed[name] == 0 {
			t.Fatalf("surrogate %q received no sessions: placement dogpiled (%v)", name, r.Placed)
		}
	}
}

// TestLoadgenAdmissionFeedback caps one surrogate and leaves the other
// open: the capped one must refuse with the typed admission error
// (client-visible, counted in the report) and every session must still
// land on the open surrogate.
func TestLoadgenAdmissionFeedback(t *testing.T) {
	reg := workloadReg(t)
	capped := aide.NewSurrogate(reg, aide.WithHeap(64<<20), aide.WithMaxSessions(2))
	open := aide.NewSurrogate(reg, aide.WithHeap(64<<20))
	t.Cleanup(func() {
		for _, s := range []*aide.Surrogate{capped, open} {
			if err := s.Close(); err != nil {
				t.Errorf("close surrogate: %v", err)
			}
		}
	})
	coord := New(
		// The capped surrogate wins every RTT bucket comparison, so the
		// coordinator keeps preferring it until admission pushes back.
		&LocalTarget{TargetName: "capped", Surrogate: capped},
		&LocalTarget{TargetName: "open", Surrogate: open, SyntheticRTT: 5 * time.Millisecond},
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, coord, reg, Config{
		Sessions:        32,
		Concurrency:     16,
		Ops:             2,
		BytesPerSession: 8 << 10,
		RefreshEvery:    1 << 30, // never: keep the bench sticky for the whole run
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Completed != 32 || r.CrossTenantFailures != 0 {
		t.Fatalf("completed = %d (cross-tenant %d), want 32 (0)", r.Completed, r.CrossTenantFailures)
	}
	if r.Rejected == 0 {
		t.Fatal("capped surrogate never rejected: admission control untested")
	}
	if got := capped.Stats().Rejected; got == 0 {
		t.Fatal("surrogate-side rejection counter is zero despite client-side rejections")
	}
	if r.Placed["open"] == 0 {
		t.Fatalf("open surrogate received no sessions (%v)", r.Placed)
	}
	if r.Placed["capped"] > 2 {
		// With a sticky bench and no refresh, at most the first two
		// admissions can land on the capped surrogate... plus any that
		// raced admission before the first rejection benched it. The cap
		// itself is enforced surrogate-side regardless.
		t.Logf("capped placements = %d (cap 2, races expected)", r.Placed["capped"])
	}
}

// TestLoadgenShedAndEvict degrades a surrogate mid-run via its health
// check: new sessions must see the typed shed error and, with
// evict-on-degraded set, live sessions are deterministically evicted and
// counted surrogate-side.
func TestLoadgenShedAndEvict(t *testing.T) {
	reg := workloadReg(t)
	var degraded atomic.Bool
	sick := aide.NewSurrogate(reg,
		aide.WithHeap(64<<20),
		aide.WithHealthCheck(func() error {
			if degraded.Load() {
				return context.DeadlineExceeded // any non-nil error means degraded
			}
			return nil
		}),
	)
	backup := aide.NewSurrogate(reg, aide.WithHeap(64<<20))
	t.Cleanup(func() {
		for _, s := range []*aide.Surrogate{sick, backup} {
			if err := s.Close(); err != nil {
				t.Errorf("close surrogate: %v", err)
			}
		}
	})
	coord := New(
		&LocalTarget{TargetName: "sick", Surrogate: sick},
		&LocalTarget{TargetName: "backup", Surrogate: backup, SyntheticRTT: 5 * time.Millisecond},
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Warm-up: a healthy run seeds sessions onto "sick" (preferred RTT).
	r1, err := Run(ctx, coord, reg, Config{Sessions: 8, Concurrency: 4, Ops: 2, BytesPerSession: 8 << 10, Logf: t.Logf})
	if err != nil || r1.Completed != 8 {
		t.Fatalf("healthy run: completed=%d err=%v", r1.Completed, err)
	}

	degraded.Store(true)
	r2, err := Run(ctx, coord, reg, Config{
		Sessions: 8, Concurrency: 4, Ops: 2, BytesPerSession: 8 << 10,
		RefreshEvery: 1 << 30,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if r2.Completed != 8 || r2.CrossTenantFailures != 0 {
		t.Fatalf("degraded run completed = %d (cross-tenant %d), want 8 (0)", r2.Completed, r2.CrossTenantFailures)
	}
	if r2.Shed == 0 {
		t.Fatal("degraded surrogate never shed: health-based load shedding untested")
	}
	if r2.Placed["sick"] != 0 {
		t.Fatalf("degraded surrogate still completed %d sessions", r2.Placed["sick"])
	}
	if got := sick.Stats().Shed; got == 0 {
		t.Fatal("surrogate-side shed counter is zero despite client-side sheds")
	}
}
