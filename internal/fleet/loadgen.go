package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aide"
	"aide/internal/remote"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// Loadgen latency metric names (registered when Config.Telemetry is set).
const (
	metricLoadgenSessionSeconds = "aide_loadgen_session_seconds"
	metricLoadgenOpSeconds      = "aide_loadgen_op_seconds"
)

// Config sizes one load-generation run.
type Config struct {
	// Sessions is the total number of simulated tenant sessions. Zero
	// defaults to 100.
	Sessions int
	// Concurrency bounds the sessions in flight at once. Zero defaults
	// to 16.
	Concurrency int
	// Ops is the number of remote invocations each session issues after
	// offloading its state. Zero defaults to 4.
	Ops int
	// BytesPerSession is each session's offloaded object size. Zero
	// defaults to 64 KiB.
	BytesPerSession int64
	// RefreshEvery re-probes the fleet after this many dispatched
	// sessions. Zero defaults to 64.
	RefreshEvery int
	// CallTimeout bounds each session's remote calls. Zero defaults to
	// 5 s.
	CallTimeout time.Duration
	// DrainEvery, when positive, orders a live drain of one fleet target
	// (round-robin, after a refresh so a destination is always available)
	// every DrainEvery dispatched sessions. Draining needs sessions that
	// can re-home, so the run drives full aide.Client sessions with live
	// handoff support instead of raw wire peers.
	DrainEvery int
	// Telemetry, when set, records session and per-op latency histograms
	// (aide_loadgen_*) in the registry.
	Telemetry *telemetry.Registry
	// Logf, when set, receives session-teardown errors. A session is
	// already accounted by the time its peer closes, so close errors
	// carry no signal for the report and are only worth a log line.
	Logf func(format string, args ...any)
}

// Report is what a load-generation run measured. Latency percentiles are
// exact (computed over every recorded duration, not bucket-interpolated).
type Report struct {
	Sessions  int   // sessions dispatched
	Completed int64 // sessions that ran every op and verified their state
	Failed    int64 // sessions that died mid-run (disconnect, timeout, error)
	Unplaced  int64 // sessions no target admitted

	// Typed session-control outcomes observed client-side.
	Rejected int64 // attach attempts refused by admission control
	Shed     int64 // attach attempts refused by load shedding

	// Drain outcomes (only populated when Config.DrainEvery is set).
	Drains      int64 // live target drains that completed
	DrainErrors int64 // drain orders that failed

	// CrossTenantFailures counts sessions whose verified state did not
	// match what the session itself wrote — the isolation property the
	// whole refactor exists to keep at zero.
	CrossTenantFailures int64

	SessionP50 time.Duration
	SessionP99 time.Duration
	OpP50      time.Duration
	OpP99      time.Duration

	// Placed counts completed sessions per target name.
	Placed map[string]int64

	// TargetStats carries the surrogate-side session-control counters
	// for in-process (LocalTarget) fleets; eviction in particular is
	// only reliably visible surrogate-side (an evicted client usually
	// observes a plain disconnect).
	TargetStats map[string]aide.SurrogateStats
}

// Evicted sums surrogate-side evictions across the fleet.
func (r *Report) Evicted() int64 {
	var n int64
	for _, st := range r.TargetStats {
		n += st.Evicted
	}
	return n
}

// WorkloadClass is the tenant workload's class name.
const WorkloadClass = "Acct"

// WorkloadRegistry builds the load generator's class registry: one
// "Acct" class with a "bal" field and a non-native "add" method, so the
// method body executes on whichever VM hosts the object — exactly the
// transparent-invocation path real tenants exercise.
func WorkloadRegistry() (*vm.Registry, error) {
	reg := vm.NewRegistry()
	_, err := reg.Register(vm.ClassSpec{
		Name:   WorkloadClass,
		Fields: []string{"bal"},
		Methods: []vm.MethodSpec{
			{Name: "add", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				cur, err := th.GetField(self, "bal")
				if err != nil {
					return vm.Nil(), err
				}
				n := cur.I + args[0].I
				return vm.Int(n), th.SetField(self, "bal", vm.Int(n))
			}},
		},
	})
	if err != nil {
		return nil, err
	}
	return reg, nil
}

// Run drives cfg.Sessions simulated tenant sessions against the
// coordinator's fleet. Each session dials the best-ranked target,
// attaches (admission control), offloads a private object tagged with a
// session-unique balance, invokes the remote method Ops times, and
// verifies the final state — a mismatch is a cross-tenant interference
// failure. Sessions run Concurrency at a time; the coordinator refreshes
// every RefreshEvery dispatches so placement follows live occupancy.
func Run(ctx context.Context, coord *Coordinator, reg *vm.Registry, cfg Config) (*Report, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 4
	}
	if cfg.BytesPerSession <= 0 {
		cfg.BytesPerSession = 64 << 10
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 64
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	var sessH, opH *telemetry.Histogram
	if cfg.Telemetry != nil {
		sessH = cfg.Telemetry.Histogram(metricLoadgenSessionSeconds,
			"End-to-end latency of one simulated tenant session.", telemetry.DefaultLatencyBuckets())
		opH = cfg.Telemetry.Histogram(metricLoadgenOpSeconds,
			"Latency of one remote invocation inside a session.", telemetry.DefaultLatencyBuckets())
	}

	coord.Refresh(ctx)

	r := &Report{Sessions: cfg.Sessions, Placed: make(map[string]int64), TargetStats: make(map[string]aide.SurrogateStats)}
	var completed, failed, unplaced, rejected, shed, crossTenant atomic.Int64
	var mu sync.Mutex
	sessLat := make([]time.Duration, 0, cfg.Sessions)
	opLat := make([]time.Duration, 0, cfg.Sessions*cfg.Ops)

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var target string
				var sdur time.Duration
				var ops []time.Duration
				var err error
				if cfg.DrainEvery > 0 {
					target, sdur, ops, err = runLiveSession(ctx, coord, reg, cfg, i, &rejected, &shed)
				} else {
					target, sdur, ops, err = runSession(ctx, coord, reg, cfg, i, &rejected, &shed)
				}
				mu.Lock()
				opLat = append(opLat, ops...)
				if err == nil {
					sessLat = append(sessLat, sdur)
					r.Placed[target]++
				}
				mu.Unlock()
				if opH != nil {
					for _, d := range ops {
						opH.Observe(d)
					}
				}
				switch {
				case err == nil:
					completed.Add(1)
					if sessH != nil {
						sessH.Observe(sdur)
					}
				case errors.Is(err, errUnplaced):
					unplaced.Add(1)
				case errors.Is(err, errCrossTenant):
					crossTenant.Add(1)
					failed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}

	var drains, drainErrs int64
	names := coord.TargetNames()
	drainIdx := 0
	var dispatchErr error
dispatch:
	for i := 0; i < cfg.Sessions; i++ {
		if i > 0 && i%cfg.RefreshEvery == 0 {
			coord.Refresh(ctx)
		}
		if cfg.DrainEvery > 0 && i > 0 && i%cfg.DrainEvery == 0 && len(names) > 1 {
			// Refresh first: it clears the bench, so the round-robin victim
			// always has a destination candidate even in a two-target fleet.
			coord.Refresh(ctx)
			from := names[drainIdx%len(names)]
			drainIdx++
			if dest, derr := coord.Drain(ctx, from); derr != nil {
				drainErrs++
				if cfg.Logf != nil {
					cfg.Logf("fleet: drain %s: %v", from, derr)
				}
			} else {
				drains++
				if cfg.Logf != nil {
					cfg.Logf("fleet: drained %s -> %s", from, dest)
				}
			}
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	r.Drains = drains
	r.DrainErrors = drainErrs
	r.Completed = completed.Load()
	r.Failed = failed.Load()
	r.Unplaced = unplaced.Load()
	r.Rejected = rejected.Load()
	r.Shed = shed.Load()
	r.CrossTenantFailures = crossTenant.Load()
	r.SessionP50, r.SessionP99 = percentiles(sessLat)
	r.OpP50, r.OpP99 = percentiles(opLat)
	for _, t := range coord.Candidates() {
		if lt, ok := t.(*LocalTarget); ok {
			r.TargetStats[lt.TargetName] = lt.Surrogate.Stats()
		}
	}
	return r, dispatchErr
}

// Session-outcome sentinels, internal to the report bookkeeping.
var (
	errUnplaced    = errors.New("fleet: session unplaced")
	errCrossTenant = errors.New("fleet: cross-tenant state corruption")
)

// runSession runs one simulated tenant end to end. It returns the target
// name, the session's wall time, and the per-op latencies it measured
// before any failure.
func runSession(ctx context.Context, coord *Coordinator, reg *vm.Registry, cfg Config, i int, rejected, shed *atomic.Int64) (string, time.Duration, []time.Duration, error) {
	start := time.Now()
	cvm := vm.New(reg, vm.Config{
		Role:         vm.RoleClient,
		HeapCapacity: 4*cfg.BytesPerSession + 1<<16,
	})
	var peer *remote.Peer
	target, err := coord.Place(ctx, func(t Target) error {
		tr, derr := t.Dial(ctx)
		if derr != nil {
			return derr
		}
		p := remote.NewPeer(cvm, tr, remote.Options{Workers: 1, CallTimeout: cfg.CallTimeout})
		if _, aerr := p.Attach(ctx); aerr != nil && !errors.Is(aerr, remote.ErrAttachUnsupported) {
			switch {
			case errors.Is(aerr, remote.ErrAdmissionRejected):
				rejected.Add(1)
			case errors.Is(aerr, remote.ErrShed):
				shed.Add(1)
			}
			cvm.DetachPeer(p.VMIndex())
			if cerr := p.Close(); cerr != nil {
				return fmt.Errorf("close rejected session: %w (after %w)", cerr, aerr)
			}
			return aerr
		}
		peer = p
		return nil
	})
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", errUnplaced, err)
	}
	name := target.Name()
	defer func() {
		cvm.DetachPeer(peer.VMIndex())
		if cerr := peer.Close(); cerr != nil && cfg.Logf != nil {
			cfg.Logf("fleet: close session %d: %v", i, cerr)
		}
	}()

	th := cvm.NewThread()
	obj, err := th.New(WorkloadClass, cfg.BytesPerSession)
	if err != nil {
		return name, 0, nil, err
	}
	cvm.SetRoot("acct", obj)
	base := int64(i+1) * 1_000_000
	if err := th.SetField(obj, "bal", vm.Int(base)); err != nil {
		return name, 0, nil, err
	}
	if _, _, err := peer.OffloadContext(ctx, []string{WorkloadClass}); err != nil {
		return name, 0, nil, fmt.Errorf("offload: %w", err)
	}
	ops := make([]time.Duration, 0, cfg.Ops)
	for j := 0; j < cfg.Ops; j++ {
		t0 := time.Now()
		_, err := th.Invoke(obj, "add", vm.Int(1))
		ops = append(ops, time.Since(t0))
		if err != nil {
			return name, 0, ops, fmt.Errorf("op %d: %w", j, err)
		}
	}
	got, err := th.GetField(obj, "bal")
	if err != nil {
		return name, 0, ops, fmt.Errorf("verify: %w", err)
	}
	if want := base + int64(cfg.Ops); got.I != want {
		return name, 0, ops, fmt.Errorf("%w: session %d read balance %d, want %d", errCrossTenant, i, got.I, want)
	}
	return name, time.Since(start), ops, nil
}

// runLiveSession is runSession over a full aide.Client instead of a raw
// wire peer: the client carries the live-handoff machinery (snapshot
// handler, drain redirect, slot takeover), so a mid-run Coordinator.Drain
// moves the session to another surrogate with the op sequence intact.
// The client's dialer resolves fleet target names, letting handoffs
// re-home over channel transports as well as TCP.
func runLiveSession(ctx context.Context, coord *Coordinator, reg *vm.Registry, cfg Config, i int, rejected, shed *atomic.Int64) (string, time.Duration, []time.Duration, error) {
	start := time.Now()
	client := aide.NewClient(reg,
		aide.WithHeap(3*cfg.BytesPerSession+1<<13),
		aide.WithCallTimeout(cfg.CallTimeout),
		aide.WithDialer(func(dctx context.Context, name string) (remote.Transport, error) {
			t := coord.lookup(name)
			if t == nil {
				return nil, fmt.Errorf("fleet: handoff to unknown target %q", name)
			}
			return t.Dial(dctx)
		}),
	)
	defer func() {
		if cerr := client.Close(); cerr != nil && cfg.Logf != nil {
			cfg.Logf("fleet: close live session %d: %v", i, cerr)
		}
	}()
	target, err := coord.Place(ctx, func(t Target) error {
		tr, derr := t.Dial(ctx)
		if derr != nil {
			return derr
		}
		aerr := client.AttachContext(ctx, tr)
		switch {
		case errors.Is(aerr, remote.ErrAdmissionRejected):
			rejected.Add(1)
		case errors.Is(aerr, remote.ErrShed):
			shed.Add(1)
		}
		return aerr
	})
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", errUnplaced, err)
	}
	name := target.Name()

	th := client.Thread()
	obj, err := th.New(WorkloadClass, cfg.BytesPerSession)
	if err != nil {
		return name, 0, nil, err
	}
	client.VM().SetRoot("acct", obj)
	base := int64(i+1) * 1_000_000
	if err := th.SetField(obj, "bal", vm.Int(base)); err != nil {
		return name, 0, nil, err
	}
	ops := make([]time.Duration, 0, cfg.Ops)
	op := func(j int) error {
		t0 := time.Now()
		_, err := th.Invoke(obj, "add", vm.Int(1))
		ops = append(ops, time.Since(t0))
		if err != nil {
			return fmt.Errorf("op %d: %w", j, err)
		}
		return nil
	}
	// One op before offloading gives the monitor an interaction graph to
	// partition; the rest run against whichever surrogate hosts the object.
	if err := op(0); err != nil {
		return name, 0, ops, err
	}
	if _, err := client.OffloadContext(ctx); err != nil {
		return name, 0, ops, fmt.Errorf("offload: %w", err)
	}
	for j := 1; j < cfg.Ops; j++ {
		if err := op(j); err != nil {
			return name, 0, ops, err
		}
	}
	got, err := th.GetField(obj, "bal")
	if err != nil {
		return name, 0, ops, fmt.Errorf("verify: %w", err)
	}
	if want := base + int64(cfg.Ops); got.I != want {
		return name, 0, ops, fmt.Errorf("%w: session %d read balance %d, want %d", errCrossTenant, i, got.I, want)
	}
	return name, time.Since(start), ops, nil
}

// percentiles returns the exact p50 and p99 of the recorded durations.
func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(float64(len(sorted)-1) * q)
		return sorted[i]
	}
	return at(0.50), at(0.99)
}
