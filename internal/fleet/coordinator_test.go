package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aide/internal/remote"
)

// fakeTarget is a scriptable Target for coordinator tests: Status returns
// a fixed snapshot and Dial is never used (Place's attach callback is the
// test's hook).
type fakeTarget struct {
	name   string
	status Status
}

func (t *fakeTarget) Name() string                  { return t.name }
func (t *fakeTarget) Status(context.Context) Status { return t.status }
func (t *fakeTarget) Dial(context.Context) (remote.Transport, error) {
	return nil, errors.New("fakeTarget has no transport")
}

func st(name string, rtt time.Duration, sessions, free, cap int64) Status {
	return Status{Name: name, RTT: rtt, Sessions: sessions, FreeBytes: free, CapacityBytes: cap}
}

// TestRankDeterministic pins the ranking's tie-break ladder and proves it
// is a pure function of its inputs: every rotation of the same statuses
// ranks identically.
func TestRankDeterministic(t *testing.T) {
	statuses := []Status{
		// Worst RTT bucket: last among the reachable.
		st("slow", 2*time.Millisecond, 0, 100, 100),
		// Same bucket as "busy"/"roomy"/"alpha" (sub-500µs): ordered by
		// sessions, then free fraction, then name.
		st("busy", 100*time.Microsecond, 5, 100, 100),
		st("roomy", 200*time.Microsecond, 1, 80, 100),
		st("tight", 300*time.Microsecond, 1, 20, 100),
		st("alpha", 400*time.Microsecond, 1, 80, 100),
		// Unreachable: always last, name-ordered.
		{Name: "down-b", Err: errors.New("unreachable")},
		{Name: "down-a", Err: errors.New("unreachable")},
	}
	want := []string{"alpha", "roomy", "tight", "busy", "slow", "down-a", "down-b"}
	for rot := 0; rot < len(statuses); rot++ {
		in := append(append([]Status(nil), statuses[rot:]...), statuses[:rot]...)
		got := Rank(in, nil)
		for i, w := range want {
			if got[i].Name != w {
				t.Fatalf("rotation %d: rank[%d] = %s, want %s (full: %v)", rot, i, got[i].Name, w, names(got))
			}
		}
	}
}

// TestRankPendingLoad verifies that placements recorded since the last
// refresh count against a target: the coordinator must not dogpile the
// surrogate that merely looked emptiest at snapshot time.
func TestRankPendingLoad(t *testing.T) {
	statuses := []Status{
		st("a", 0, 0, 100, 100),
		st("b", 0, 0, 100, 100),
	}
	got := Rank(statuses, map[string]int64{"a": 2})
	if got[0].Name != "b" {
		t.Fatalf("rank with pending load on a = %v, want b first", names(got))
	}
}

// TestCoordinatorPlacementSequence replays the same fleet twice and
// demands the identical placement sequence — the determinism the ISSUE
// requires so fleet decisions can be audited offline.
func TestCoordinatorPlacementSequence(t *testing.T) {
	run := func() []string {
		c := New(
			&fakeTarget{name: "b", status: st("b", 0, 0, 100, 100)},
			&fakeTarget{name: "a", status: st("a", 0, 0, 100, 100)},
		)
		c.Refresh(context.Background())
		var seq []string
		for i := 0; i < 6; i++ {
			tgt, err := c.Place(context.Background(), func(Target) error { return nil })
			if err != nil {
				t.Fatalf("place %d: %v", i, err)
			}
			seq = append(seq, tgt.Name())
		}
		return seq
	}
	first, second := run(), run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if first[i] != want[i] || second[i] != want[i] {
			t.Fatalf("placement sequences diverged or unexpected:\n  first  %v\n  second %v\n  want   %v", first, second, want)
		}
	}
}

// TestCoordinatorBenchOnRejection verifies the admission feedback loop: a
// typed rejection benches the target until the next refresh, while plain
// transport failures leave it in the rotation.
func TestCoordinatorBenchOnRejection(t *testing.T) {
	c := New(
		&fakeTarget{name: "full", status: st("full", 0, 0, 100, 100)},
		&fakeTarget{name: "open", status: st("open", 0, 9, 100, 100)},
	)
	c.Refresh(context.Background())

	// "full" ranks first (fewer sessions) but rejects with the typed
	// admission error; Place must fall through to "open" and bench "full".
	attempts := []string{}
	tgt, err := c.Place(context.Background(), func(cand Target) error {
		attempts = append(attempts, cand.Name())
		if cand.Name() == "full" {
			return fmt.Errorf("attach: %w", remote.ErrAdmissionRejected)
		}
		return nil
	})
	if err != nil || tgt.Name() != "open" {
		t.Fatalf("place = %v, %v; want open, nil", tgt, err)
	}
	if len(attempts) != 2 || attempts[0] != "full" {
		t.Fatalf("attach attempts = %v, want [full open]", attempts)
	}

	// Benched: the next placement must not re-offer "full".
	tgt, err = c.Place(context.Background(), func(cand Target) error {
		if cand.Name() == "full" {
			return errors.New("benched target was offered again")
		}
		return nil
	})
	if err != nil || tgt.Name() != "open" {
		t.Fatalf("post-bench place = %v, %v; want open, nil", tgt, err)
	}
	if placed, rejected := c.Placements(); placed != 2 || rejected != 1 {
		t.Fatalf("placements = (%d, %d), want (2, 1)", placed, rejected)
	}

	// Refresh clears the bench.
	c.Refresh(context.Background())
	tgt, err = c.Place(context.Background(), func(Target) error { return nil })
	if err != nil || tgt.Name() != "full" {
		t.Fatalf("post-refresh place = %v, %v; want full back in rotation", tgt, err)
	}
}

// TestCoordinatorShedBenches verifies load-shedding errors bench like
// admission rejections, and that exhausting every candidate surfaces a
// wrapped typed error.
func TestCoordinatorShedBenches(t *testing.T) {
	c := New(&fakeTarget{name: "only", status: st("only", 0, 0, 100, 100)})
	c.Refresh(context.Background())
	_, err := c.Place(context.Background(), func(Target) error {
		return fmt.Errorf("attach: %w", remote.ErrShed)
	})
	if !errors.Is(err, remote.ErrShed) {
		t.Fatalf("place error = %v, want wrapped ErrShed", err)
	}
	if _, err := c.Place(context.Background(), func(Target) error { return nil }); err == nil {
		t.Fatal("place with every target benched should fail")
	}
}

func names(sts []Status) []string {
	out := make([]string, len(sts))
	for i, s := range sts {
		out[i] = s.Name
	}
	return out
}
