// Package netmodel models the communication link between a client device
// and a surrogate server.
//
// The paper's emulator bases remote communication on an 11 Mbps WaveLAN
// link with a 2.4 ms round-trip time for a null message (paper §4); the
// model here reduces a link to exactly those two parameters plus a fixed
// per-message header size, and charges every remote interaction a latency
// plus a serialization cost.
package netmodel

import (
	"fmt"
	"time"
)

// Link describes a client↔surrogate communication link.
type Link struct {
	// BandwidthBps is the usable link bandwidth in bits per second.
	BandwidthBps float64

	// RTT is the round-trip time of a null message.
	RTT time.Duration

	// HeaderBytes is the fixed protocol overhead charged per message
	// (framing, object-reference mapping, method identifiers).
	HeaderBytes int64
}

// WaveLAN returns the paper's emulator link: 11 Mbps with a 2.4 ms null
// round-trip time.
func WaveLAN() Link {
	return Link{
		BandwidthBps: 11e6,
		RTT:          2400 * time.Microsecond,
		HeaderBytes:  32,
	}
}

// Validate reports whether the link parameters are usable.
func (l Link) Validate() error {
	if l.BandwidthBps <= 0 {
		return fmt.Errorf("netmodel: bandwidth %v bps must be positive", l.BandwidthBps)
	}
	if l.RTT < 0 {
		return fmt.Errorf("netmodel: negative RTT %v", l.RTT)
	}
	if l.HeaderBytes < 0 {
		return fmt.Errorf("netmodel: negative header size %d", l.HeaderBytes)
	}
	return nil
}

// serialize returns the time to push the given payload (plus one header)
// onto the link.
func (l Link) serialize(payloadBytes int64) time.Duration {
	bits := float64(payloadBytes+l.HeaderBytes) * 8
	return time.Duration(bits / l.BandwidthBps * float64(time.Second))
}

// OneWay returns the time for a single message carrying payloadBytes to
// reach the other side: half the null RTT plus serialization time.
func (l Link) OneWay(payloadBytes int64) time.Duration {
	return l.RTT/2 + l.serialize(payloadBytes)
}

// RPC returns the time for a round trip carrying a request of reqBytes and
// a reply of respBytes: the full null RTT plus both serialization times.
// This is the cost the emulator charges a remote method invocation or a
// remote data access (paper §4: simulated execution time is stretched to
// account for remote invocations and data accesses).
func (l Link) RPC(reqBytes, respBytes int64) time.Duration {
	return l.RTT + l.serialize(reqBytes) + l.serialize(respBytes)
}

// Transfer returns the time to bulk-transfer n bytes split into messages of
// at most mtu payload bytes each, pipelined (one half-RTT start-up plus
// serialization of every message). It models the one-time cost of
// offloading selected objects to the surrogate.
func (l Link) Transfer(n, mtu int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if mtu <= 0 {
		mtu = 1400
	}
	msgs := (n + mtu - 1) / mtu
	bits := float64(n+msgs*l.HeaderBytes) * 8
	return l.RTT/2 + time.Duration(bits/l.BandwidthBps*float64(time.Second))
}

// Bandwidth returns the average payload bandwidth in bytes per second that
// transferring bytes over the duration implies. It is used to report the
// predicted interaction bandwidth of a partitioning (paper §5.1 predicts
// ~100 KB/s for JavaNote).
func Bandwidth(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds()
}
