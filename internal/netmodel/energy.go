package netmodel

import (
	"fmt"
	"time"
)

// EnergyModel estimates client-device battery drain. The paper's vision
// (§2) includes offloading to extend battery life ("a user may choose to
// extend battery life at the cost of slower execution"), and §8 lists
// power as a constraint to examine; this model makes that experiment
// possible: local execution burns CPU power, remote execution idles the
// CPU but burns radio power.
type EnergyModel struct {
	// CPUActiveWatts is drawn while the client executes application code.
	CPUActiveWatts float64

	// CPUIdleWatts is drawn while the client waits (remote execution,
	// communication).
	CPUIdleWatts float64

	// RadioActiveWatts is drawn while the radio transmits or receives.
	RadioActiveWatts float64

	// RadioIdleWatts is drawn while the radio is up but quiet (the ad-hoc
	// platform keeps the link associated).
	RadioIdleWatts float64
}

// HandheldEnergy returns a model of a 2001-era PDA with a WaveLAN card:
// ~1.2 W CPU active vs ~0.15 W idle, ~1.4 W radio active vs ~0.8 W
// associated-idle (WaveLAN cards were notoriously hungry even when idle).
func HandheldEnergy() EnergyModel {
	return EnergyModel{
		CPUActiveWatts:   1.2,
		CPUIdleWatts:     0.15,
		RadioActiveWatts: 1.4,
		RadioIdleWatts:   0.8,
	}
}

// HandheldEnergyPSM returns the same handheld with 802.11 power-save mode:
// the radio dozes (~45 mW) between transfers instead of idling hot. The
// energy study shows this is what makes compute offloading battery-
// positive.
func HandheldEnergyPSM() EnergyModel {
	m := HandheldEnergy()
	m.RadioIdleWatts = 0.045
	return m
}

// Validate reports whether the model is usable.
func (m EnergyModel) Validate() error {
	for _, w := range []float64{m.CPUActiveWatts, m.CPUIdleWatts, m.RadioActiveWatts, m.RadioIdleWatts} {
		if w < 0 {
			return fmt.Errorf("netmodel: negative power %v W", w)
		}
	}
	return nil
}

// EnergyBreakdown decomposes a run's client-side energy.
type EnergyBreakdown struct {
	CPUActiveJ float64
	CPUIdleJ   float64
	RadioJ     float64
	TotalJ     float64
}

// Energy computes the client's energy for a run: localExec is time the
// client CPU executes application code, waiting is time it idles (remote
// execution, communication in flight), airtime is time the radio is
// active, and radioUp is the total time the radio stays associated (zero
// when no platform is attached).
func (m EnergyModel) Energy(localExec, waiting, airtime, radioUp time.Duration) EnergyBreakdown {
	b := EnergyBreakdown{
		CPUActiveJ: m.CPUActiveWatts * localExec.Seconds(),
		CPUIdleJ:   m.CPUIdleWatts * waiting.Seconds(),
	}
	quiet := radioUp - airtime
	if quiet < 0 {
		quiet = 0
	}
	b.RadioJ = m.RadioActiveWatts*airtime.Seconds() + m.RadioIdleWatts*quiet.Seconds()
	b.TotalJ = b.CPUActiveJ + b.CPUIdleJ + b.RadioJ
	return b
}
