package netmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWaveLANParameters(t *testing.T) {
	l := WaveLAN()
	if l.BandwidthBps != 11e6 {
		t.Fatalf("bandwidth = %v, want 11 Mbps", l.BandwidthBps)
	}
	if l.RTT != 2400*time.Microsecond {
		t.Fatalf("RTT = %v, want 2.4 ms (paper §4)", l.RTT)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadLinks(t *testing.T) {
	bad := []Link{
		{BandwidthBps: 0, RTT: time.Millisecond},
		{BandwidthBps: -1, RTT: time.Millisecond},
		{BandwidthBps: 1e6, RTT: -time.Millisecond},
		{BandwidthBps: 1e6, RTT: time.Millisecond, HeaderBytes: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRPCNullMessageCostsRTT(t *testing.T) {
	l := WaveLAN()
	cost := l.RPC(0, 0)
	headers := time.Duration(float64(2*l.HeaderBytes*8) / l.BandwidthBps * float64(time.Second))
	want := l.RTT + headers
	if diff := cost - want; diff < -2*time.Nanosecond || diff > 2*time.Nanosecond {
		t.Fatalf("null RPC = %v, want ≈ RTT + header serialization = %v", cost, want)
	}
}

func TestRPCBandwidthTerm(t *testing.T) {
	l := Link{BandwidthBps: 8e6, RTT: 0, HeaderBytes: 0} // 1 byte = 1 µs
	if got := l.RPC(1000, 0); got != time.Millisecond {
		t.Fatalf("1000B over 8Mbps = %v, want 1ms", got)
	}
	if got := l.OneWay(500); got != 500*time.Microsecond {
		t.Fatalf("one way = %v", got)
	}
}

func TestTransferPipelines(t *testing.T) {
	l := WaveLAN()
	small := l.Transfer(1400, 1400)
	big := l.Transfer(14000, 1400)
	if big <= small {
		t.Fatal("bigger transfers must take longer")
	}
	// Pipelined: 10 MTUs must cost much less than 10 sequential RPCs.
	tenRPCs := 10 * l.RPC(1400, 0)
	if big >= tenRPCs {
		t.Fatalf("bulk transfer %v not pipelined vs %v", big, tenRPCs)
	}
	if l.Transfer(0, 1400) != 0 {
		t.Fatal("empty transfer must cost nothing")
	}
	if l.Transfer(100, 0) <= 0 {
		t.Fatal("zero MTU must default, not panic or freeload")
	}
}

func TestCostMonotonicity(t *testing.T) {
	l := WaveLAN()
	check := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return l.RPC(x, 0) <= l.RPC(y, 0) && l.OneWay(x) <= l.OneWay(y)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidth(t *testing.T) {
	if got := Bandwidth(1000, time.Second); got != 1000 {
		t.Fatalf("Bandwidth = %v", got)
	}
	if got := Bandwidth(1000, 0); got != 0 {
		t.Fatal("zero duration must not divide by zero")
	}
}
