// Package mincut implements graph partitioning for AIDE (paper §3.3).
//
// It provides the classic Stoer–Wagner global minimum cut [Stoer & Wagner,
// JACM 44(4), 1997] and the paper's modified heuristic, which seeds the
// client partition with every class that cannot be offloaded (native
// methods, static data) and then emits a family of approximate minimum-cut
// candidate partitionings for the partitioning policy to evaluate.
package mincut

import (
	"errors"
	"fmt"
	"math"
)

// Input is a dense, undirected, weighted graph together with the set of
// vertices pinned to the client partition.
type Input struct {
	// N is the number of vertices, numbered 0..N-1.
	N int

	// Weight is the symmetric N×N edge-weight matrix. Weight[i][i] is
	// ignored. Weights must be non-negative.
	Weight [][]float64

	// Pinned marks vertices that must remain in the client partition
	// (classes with native methods or host-specific static data).
	Pinned []bool
}

// Validate reports whether the input is well formed.
func (in Input) Validate() error {
	if in.N < 0 {
		return fmt.Errorf("mincut: negative vertex count %d", in.N)
	}
	if len(in.Weight) != in.N {
		return fmt.Errorf("mincut: weight matrix has %d rows, want %d", len(in.Weight), in.N)
	}
	for i, row := range in.Weight {
		if len(row) != in.N {
			return fmt.Errorf("mincut: weight row %d has %d columns, want %d", i, len(row), in.N)
		}
		for j, w := range row {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("mincut: invalid weight %v at (%d,%d)", w, i, j)
			}
			if in.Weight[j][i] != w {
				return fmt.Errorf("mincut: weight matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if in.Pinned != nil && len(in.Pinned) != in.N {
		return fmt.Errorf("mincut: pinned has %d entries, want %d", len(in.Pinned), in.N)
	}
	return nil
}

// Candidate is one intermediate partitioning produced by the modified
// MINCUT heuristic. InClient[v] reports whether vertex v stays on the
// client; the complement is the offload set.
type Candidate struct {
	InClient []bool

	// CutWeight is the total weight of edges crossing the partition: the
	// predicted interaction cost of this placement.
	CutWeight float64

	// Offloaded is the number of vertices in the offload (surrogate) set.
	Offloaded int
}

// ErrNoVertices is returned when an empty graph is partitioned.
var ErrNoVertices = errors.New("mincut: graph has no vertices")

// Candidates runs the paper's modified Stoer–Wagner heuristic.
//
// The heuristic places all pinned vertices in the client partition, then
// repeatedly moves the vertex of the offload partition with the greatest
// connectivity to the client partition, recording every intermediate
// partitioning. The first candidate offloads everything that is not pinned;
// the last offloads a single vertex. The partitioning policy evaluates all
// candidates and selects the one that best satisfies the overall policy,
// which is not necessarily the one with the minimum interaction cost.
//
// If no vertex is pinned, vertex 0 seeds the client partition, matching the
// original Stoer–Wagner minimum-cut-phase construction.
func Candidates(in Input) ([]Candidate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return candidates(in, nil)
}

// candidates is the heuristic core, shared by Candidates and
// Scratch.Candidates. It assumes a validated input. conn is an optional
// length-N scratch buffer for the connectivity array; nil allocates one.
func candidates(in Input, conn []float64) ([]Candidate, error) {
	if in.N == 0 {
		return nil, ErrNoVertices
	}

	inClient := make([]bool, in.N)
	clientN := 0
	for v := 0; v < in.N; v++ {
		if in.Pinned != nil && in.Pinned[v] {
			inClient[v] = true
			clientN++
		}
	}
	var candidates []Candidate
	if clientN == 0 {
		// Nothing is pinned: offloading everything is itself a valid
		// partitioning (the whole application runs on the surrogate), and
		// the maximum-adjacency ordering seeds from the best-connected
		// vertex, as in the original Stoer–Wagner phase.
		candidates = append(candidates, Candidate{
			InClient:  make([]bool, in.N),
			CutWeight: 0,
			Offloaded: in.N,
		})
		seed, best := 0, -1.0
		for v := 0; v < in.N; v++ {
			var total float64
			for u := 0; u < in.N; u++ {
				if u != v {
					total += in.Weight[v][u]
				}
			}
			if total > best {
				seed, best = v, total
			}
		}
		inClient[seed] = true
		clientN = 1
	}
	if clientN == in.N {
		// Everything (that remains) is in the client partition: the only
		// further candidate offloads nothing.
		candidates = append(candidates, Candidate{InClient: cloneBools(inClient), Offloaded: 0})
		return candidates, nil
	}

	// conn[v] = total weight between v and the current client partition.
	if len(conn) != in.N {
		conn = make([]float64, in.N)
	} else {
		for i := range conn {
			conn[i] = 0
		}
	}
	var cut float64
	for v := 0; v < in.N; v++ {
		if inClient[v] {
			continue
		}
		for u := 0; u < in.N; u++ {
			if u != v && inClient[u] {
				conn[v] += in.Weight[v][u]
			}
		}
		cut += conn[v]
	}

	record := func() {
		candidates = append(candidates, Candidate{
			InClient:  cloneBools(inClient),
			CutWeight: cut,
			Offloaded: in.N - clientN,
		})
	}
	record() // offload everything that is not pinned

	for in.N-clientN > 1 {
		// Move the most-connected offload vertex into the client partition.
		best, bestConn := -1, math.Inf(-1)
		for v := 0; v < in.N; v++ {
			if !inClient[v] && conn[v] > bestConn {
				best, bestConn = v, conn[v]
			}
		}
		inClient[best] = true
		clientN++
		cut -= conn[best]
		for v := 0; v < in.N; v++ {
			if !inClient[v] && v != best {
				w := in.Weight[v][best]
				conn[v] += w
				cut += w
			}
		}
		record()
	}
	return candidates, nil
}

// GlobalMinCut computes the exact global minimum cut of the weighted graph
// using the Stoer–Wagner algorithm. It returns one side of the minimum cut
// (as a membership slice over the original vertices) and its weight. Pinning
// is ignored; this is the reference algorithm the paper's heuristic derives
// from, used here for validation and as an ablation baseline.
func GlobalMinCut(n int, weight [][]float64) ([]bool, float64, error) {
	in := Input{N: n, Weight: weight}
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, ErrNoVertices
	}
	if n == 1 {
		return []bool{true}, 0, nil
	}

	// w is mutated as vertices merge; groups[i] lists original vertices
	// merged into contracted vertex i.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		copy(w[i], weight[i])
	}
	groups := make([][]int, n)
	active := make([]int, n)
	for i := 0; i < n; i++ {
		groups[i] = []int{i}
		active[i] = i
	}

	bestWeight := math.Inf(1)
	var bestSide []int

	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency ordering over active
		// vertices starting from active[0].
		added := map[int]bool{active[0]: true}
		conn := make(map[int]float64, len(active))
		for _, v := range active[1:] {
			conn[v] = w[v][active[0]]
		}
		order := []int{active[0]}
		for len(order) < len(active) {
			best, bestConn := -1, math.Inf(-1)
			for _, v := range active {
				if !added[v] && conn[v] > bestConn {
					best, bestConn = v, conn[v]
				}
			}
			added[best] = true
			order = append(order, best)
			for _, v := range active {
				if !added[v] {
					conn[v] += w[v][best]
				}
			}
		}

		s, t := order[len(order)-2], order[len(order)-1]
		cutOfPhase := conn[t]
		if cutOfPhase < bestWeight {
			bestWeight = cutOfPhase
			bestSide = append([]int(nil), groups[t]...)
		}

		// Merge t into s.
		groups[s] = append(groups[s], groups[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		keep := active[:0]
		for _, v := range active {
			if v != t {
				keep = append(keep, v)
			}
		}
		active = keep
	}

	side := make([]bool, n)
	for _, v := range bestSide {
		side[v] = true
	}
	return side, bestWeight, nil
}

// CutWeight computes the weight of the cut defined by the membership slice.
func CutWeight(n int, weight [][]float64, inA []bool) float64 {
	var total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if inA[i] != inA[j] {
				total += weight[i][j]
			}
		}
	}
	return total
}

func cloneBools(b []bool) []bool {
	out := make([]bool, len(b))
	copy(out, b)
	return out
}
