package mincut

import (
	"math"
	"sort"
)

// GreedyDensityCandidates is an alternative partitioning heuristic (the
// paper's §8 lists "additional partitioning heuristics besides the
// modified MINCUT approach" as future work).
//
// Where the modified MINCUT heuristic grows the client partition by
// connectivity, this heuristic grows the *offload* partition by memory
// density: it repeatedly offloads the unpinned vertex with the highest
// memory freed per unit of cut weight added, emitting a candidate after
// each move. It tends to find memory-rich, loosely coupled offloads
// faster, but can strand tightly coupled pairs on opposite sides.
//
// memory[v] is the bytes freed by offloading vertex v.
func GreedyDensityCandidates(in Input, memory []int64) ([]Candidate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return greedyDensityCandidates(in, memory)
}

// greedyDensityCandidates is the heuristic core, shared with
// Scratch.GreedyDensityCandidates. It assumes a validated input.
func greedyDensityCandidates(in Input, memory []int64) ([]Candidate, error) {
	if in.N == 0 {
		return nil, ErrNoVertices
	}
	if len(memory) != in.N {
		memory = make([]int64, in.N)
	}

	inClient := make([]bool, in.N)
	movable := make([]int, 0, in.N)
	for v := 0; v < in.N; v++ {
		inClient[v] = true
		if in.Pinned == nil || !in.Pinned[v] {
			movable = append(movable, v)
		}
	}
	if len(movable) == 0 {
		return []Candidate{{InClient: cloneBools(inClient)}}, nil
	}

	// conn[v] = weight between v and the current client partition minus
	// weight to the offload partition: the cut-weight delta of moving v.
	delta := func(v int) float64 {
		var d float64
		for u := 0; u < in.N; u++ {
			if u == v {
				continue
			}
			if inClient[u] {
				d += in.Weight[v][u]
			} else {
				d -= in.Weight[v][u]
			}
		}
		return d
	}

	var cut float64
	candidates := make([]Candidate, 0, len(movable)+1)
	record := func(offloaded int) {
		candidates = append(candidates, Candidate{
			InClient:  cloneBools(inClient),
			CutWeight: cut,
			Offloaded: offloaded,
		})
	}
	record(0) // offload nothing

	remaining := append([]int(nil), movable...)
	offloaded := 0
	for len(remaining) > 0 {
		best, bestScore := -1, math.Inf(-1)
		for i, v := range remaining {
			d := delta(v)
			var score float64
			if d <= 0 {
				// Moving v reduces the cut: always best, break ties by
				// memory.
				score = math.MaxFloat64/2 + float64(memory[v])
			} else {
				score = float64(memory[v]+1) / (d + 1)
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		v := remaining[best]
		cut += delta(v)
		inClient[v] = false
		offloaded++
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		record(offloaded)
	}
	return candidates, nil
}

// RefineKL applies a Kernighan–Lin-style swap-refinement pass to a
// partitioning: it repeatedly exchanges one unpinned client vertex with
// one offloaded vertex when the swap strictly reduces the cut weight,
// until no swap helps. Swapping (rather than moving) preserves the number
// of offloaded vertices, so a refinement cannot collapse the offload that
// the partitioning policy selected — the degenerate zero-cut "offload
// nothing" solution stays unreachable.
func RefineKL(in Input, inClient []bool) ([]bool, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	return refineKL(in, inClient)
}

// refineKL is the refinement core, shared with Scratch.RefineKL. It
// assumes a validated input.
func refineKL(in Input, inClient []bool) ([]bool, float64, error) {
	out := cloneBools(inClient)
	cut := CutWeight(in.N, in.Weight, out)
	improved := true
	for improved {
		improved = false
		bestGain := 0.0
		bestA, bestB := -1, -1
		for a := 0; a < in.N; a++ {
			if !out[a] || (in.Pinned != nil && in.Pinned[a]) {
				continue // a must be an unpinned client vertex
			}
			for b := 0; b < in.N; b++ {
				if out[b] {
					continue // b must be offloaded
				}
				out[a], out[b] = false, true
				gain := cut - CutWeight(in.N, in.Weight, out)
				out[a], out[b] = true, false
				if gain > bestGain+1e-9 {
					bestGain, bestA, bestB = gain, a, b
				}
			}
		}
		if bestA >= 0 {
			out[bestA], out[bestB] = false, true
			cut -= bestGain
			improved = true
		}
	}
	return out, CutWeight(in.N, in.Weight, out), nil
}

// SortCandidatesByCut orders candidates by ascending cut weight (stable on
// offload size), a convenience for heuristic comparisons.
func SortCandidatesByCut(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].CutWeight != cands[j].CutWeight {
			return cands[i].CutWeight < cands[j].CutWeight
		}
		return cands[i].Offloaded < cands[j].Offloaded
	})
}
