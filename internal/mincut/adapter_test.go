package mincut

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"aide/internal/graph"
)

// randomExecGraph builds an execution graph with n classes, random pins,
// and random pairwise invocations.
func randomExecGraph(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	nodes := make([]*graph.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = g.Intern(fmt.Sprintf("class%d", i))
		nodes[i].Pinned = r.Intn(4) == 0
	}
	if n > 0 {
		nodes[0].Pinned = true // keep at least one client vertex
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				g.AddInvocation(nodes[i].ID, nodes[j].ID, int64(1+r.Intn(4096)))
			}
		}
	}
	return g
}

// TestScratchMatchesFresh drives one Scratch across graphs of growing and
// shrinking sizes — the emulator's repartition pattern — and checks that
// every heuristic produces results identical to the allocating public API.
// The shrink step in particular exercises stale-buffer zeroing.
func TestScratchMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sc Scratch
	for _, n := range []int{5, 12, 40, 9, 40, 3} {
		g := randomExecGraph(r, n)
		fresh := FromGraph(g, graph.BytesWeight)
		reused := sc.FromGraph(g, graph.BytesWeight)

		if err := reused.Validate(); err != nil {
			t.Fatalf("n=%d: reused input invalid: %v", n, err)
		}
		if reused.N != fresh.N || !reflect.DeepEqual(reused.Weight, fresh.Weight) ||
			!reflect.DeepEqual(reused.Pinned, fresh.Pinned) {
			t.Fatalf("n=%d: scratch FromGraph differs from fresh FromGraph", n)
		}

		cf, errF := Candidates(fresh)
		cr, errR := sc.Candidates(reused)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("n=%d: Candidates err mismatch: %v vs %v", n, errF, errR)
		}
		if !reflect.DeepEqual(cf, cr) {
			t.Fatalf("n=%d: scratch Candidates differ from fresh", n)
		}

		mem := make([]int64, n)
		for i := range mem {
			mem[i] = int64(r.Intn(1 << 16))
		}
		gf, errF := GreedyDensityCandidates(fresh, mem)
		gr, errR := sc.GreedyDensityCandidates(reused, mem)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("n=%d: greedy err mismatch: %v vs %v", n, errF, errR)
		}
		if !reflect.DeepEqual(gf, gr) {
			t.Fatalf("n=%d: scratch greedy candidates differ from fresh", n)
		}

		if len(cf) > 0 {
			seed := cf[len(cf)/2].InClient
			kf, wf, errF := RefineKL(fresh, seed)
			kr, wr, errR := sc.RefineKL(reused, seed)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("n=%d: RefineKL err mismatch: %v vs %v", n, errF, errR)
			}
			if wf != wr || !reflect.DeepEqual(kf, kr) {
				t.Fatalf("n=%d: scratch RefineKL differs from fresh", n)
			}
		}
	}
}

// TestScratchInputAliasing documents the contract that an Input returned by
// Scratch.FromGraph is only valid until the next FromGraph call: candidate
// slices, by contrast, must remain stable.
func TestScratchCandidatesSurviveReuse(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	var sc Scratch
	g1 := randomExecGraph(r, 20)
	in1 := sc.FromGraph(g1, graph.BytesWeight)
	c1, err := sc.Candidates(in1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Candidates(FromGraph(g1, graph.BytesWeight))
	if err != nil {
		t.Fatal(err)
	}

	// Clobber the scratch with a different graph; earlier candidates must
	// be unaffected.
	g2 := randomExecGraph(r, 33)
	in2 := sc.FromGraph(g2, graph.BytesWeight)
	if _, err := sc.Candidates(in2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, want) {
		t.Fatal("candidates from the first graph changed after scratch reuse")
	}
}
