package mincut

import (
	"fmt"
	"math/rand"
	"testing"

	"aide/internal/graph"
)

// randomDeltaWorkload applies k random mutations to g and mirrors them
// nowhere else — deltas are pulled by the caller.
func randomDeltaWorkload(rng *rand.Rand, g *graph.Graph, ids []graph.NodeID, k int) {
	for i := 0; i < k; i++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		if a == b {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			g.AddInvocation(a, b, int64(rng.Intn(1024)+1))
		case 1:
			g.AddAccess(a, b, int64(rng.Intn(256)+1))
		case 2:
			g.AddObject(a, int64(rng.Intn(4096)))
		}
	}
}

// TestIncrementalMatrixMatchesFresh: after K rounds of random deltas the
// persistently maintained matrix must be byte-equal to a from-scratch
// fillFromGraph of the same graph — the invariant that makes the
// fallback path exactly equivalent to a cold run.
func TestIncrementalMatrixMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 30; i++ {
		n := g.Intern(fmt.Sprintf("C%02d", i))
		if i%7 == 0 {
			n.Pinned = true
		}
		ids = append(ids, n.ID)
	}

	var inc Incremental
	for round := 0; round < 25; round++ {
		randomDeltaWorkload(rng, g, ids, 40)
		if round == 10 {
			// Mid-stream growth: new classes join.
			for i := 0; i < 5; i++ {
				ids = append(ids, g.Intern(fmt.Sprintf("X%02d", i)).ID)
			}
		}
		inc.Update(g.Delta(inc.Epoch()), graph.BytesWeight)

		var fresh Scratch
		want := fresh.FromGraph(g, graph.BytesWeight)
		if inc.in.N != want.N {
			t.Fatalf("round %d: N = %d want %d", round, inc.in.N, want.N)
		}
		for i := 0; i < want.N; i++ {
			if inc.in.Pinned[i] != want.Pinned[i] {
				t.Fatalf("round %d: pinned[%d] = %t", round, i, inc.in.Pinned[i])
			}
			for j := 0; j < want.N; j++ {
				if inc.in.Weight[i][j] != want.Weight[i][j] {
					t.Fatalf("round %d: weight[%d][%d] = %v want %v",
						round, i, j, inc.in.Weight[i][j], want.Weight[i][j])
				}
			}
		}
	}
}

// TestIncrementalFallbackEqualsFullPass: with Threshold < 0 every
// Candidates call takes the fallback, which must reproduce a cold
// Candidates run on the same graph bit for bit.
func TestIncrementalFallbackEqualsFullPass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 20; i++ {
		n := g.Intern(fmt.Sprintf("C%02d", i))
		n.Pinned = i < 3
		ids = append(ids, n.ID)
	}

	inc := Incremental{Threshold: -1}
	for round := 0; round < 10; round++ {
		randomDeltaWorkload(rng, g, ids, 30)
		inc.Update(g.Delta(inc.Epoch()), graph.BytesWeight)
		got, err := inc.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if !inc.WasFull() {
			t.Fatal("negative threshold must force the full pass")
		}
		want, err := Candidates(FromGraph(g, graph.BytesWeight))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d candidates, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].CutWeight != want[i].CutWeight || got[i].Offloaded != want[i].Offloaded {
				t.Fatalf("round %d cand %d: got %v/%d want %v/%d", round, i,
					got[i].CutWeight, got[i].Offloaded, want[i].CutWeight, want[i].Offloaded)
			}
			for v := range want[i].InClient {
				if got[i].InClient[v] != want[i].InClient[v] {
					t.Fatalf("round %d cand %d vertex %d differs", round, i, v)
				}
			}
		}
		inc.Commit(got[len(got)/2])
	}
}

// TestIncrementalWarmPath: small deltas against a committed partition
// take the warm path, keep pinned vertices on the client, maintain the
// cut weight exactly (integer weights), and never worsen the committed
// cut.
func TestIncrementalWarmPath(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 40; i++ {
		n := g.Intern(fmt.Sprintf("C%02d", i))
		n.Pinned = i == 0
		ids = append(ids, n.ID)
	}
	randomDeltaWorkload(rng, g, ids, 2000) // dense base graph

	var inc Incremental
	inc.Update(g.Delta(0), graph.BytesWeight)
	cands, err := inc.Candidates()
	if err != nil || !inc.WasFull() {
		t.Fatalf("cold start: err=%v full=%t", err, inc.WasFull())
	}
	chosen := cands[len(cands)/2]
	inc.Commit(chosen)

	for round := 0; round < 15; round++ {
		randomDeltaWorkload(rng, g, ids, 5) // ≤5 dirty edges on a dense graph
		inc.Update(g.Delta(inc.Epoch()), graph.BytesWeight)
		warm, err := inc.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if inc.WasFull() {
			t.Fatalf("round %d: small delta took the full pass", round)
		}
		if len(warm) != 1 {
			t.Fatalf("round %d: warm path returned %d candidates", round, len(warm))
		}
		c := warm[0]
		if !c.InClient[0] {
			t.Fatalf("round %d: pinned vertex left the client", round)
		}
		// The reported cut must equal the true cut of the placement.
		truth := CutWeight(inc.N(), inc.in.Weight, c.InClient)
		if c.CutWeight != truth {
			t.Fatalf("round %d: maintained cut %v, true cut %v", round, c.CutWeight, truth)
		}
		// Refinement only applies improving moves: no worse than the
		// committed baseline under the updated weights.
		base := CutWeight(inc.N(), inc.in.Weight, inc.prev)
		if c.CutWeight > base {
			t.Fatalf("round %d: refined cut %v worse than baseline %v", round, c.CutWeight, base)
		}
		inc.Commit(c)
	}
}

// TestIncrementalFullResync: an out-of-lineage delta (Full) resets the
// matrix and forces the full pass, landing on the same result as a cold
// run.
func TestIncrementalFullResync(t *testing.T) {
	g := graph.New()
	a, b, c := g.Intern("a"), g.Intern("b"), g.Intern("c")
	g.Intern("d").Pinned = true
	g.AddInvocation(a.ID, b.ID, 100)
	g.AddAccess(b.ID, c.ID, 50)

	var inc Incremental
	inc.Update(g.Delta(0), graph.BytesWeight)
	cands, _ := inc.Candidates()
	inc.Commit(cands[0])

	// Simulate a consumer that lost its epoch: pull with a bogus one.
	d := g.Delta(12345)
	if !d.Full {
		t.Fatal("expected full resync")
	}
	inc.Update(d, graph.BytesWeight)
	got, err := inc.Candidates()
	if err != nil || !inc.WasFull() {
		t.Fatalf("resync: err=%v full=%t", err, inc.WasFull())
	}
	want, _ := Candidates(FromGraph(g, graph.BytesWeight))
	if len(got) != len(want) || got[0].CutWeight != want[0].CutWeight {
		t.Fatalf("resync diverged: %d/%v vs %d/%v", len(got), got[0].CutWeight, len(want), want[0].CutWeight)
	}
}

// TestIncrementalEmpty: partitioning before any delta reports
// ErrNoVertices like the cold API.
func TestIncrementalEmpty(t *testing.T) {
	var inc Incremental
	if _, err := inc.Candidates(); err != ErrNoVertices {
		t.Fatalf("err = %v", err)
	}
}
