package mincut

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyDensityInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		w := randomGraph(r, n, 0.5, 40)
		pinned := make([]bool, n)
		mem := make([]int64, n)
		for v := 0; v < n; v++ {
			pinned[v] = r.Intn(4) == 0
			mem[v] = int64(r.Intn(1000))
		}
		cands, err := GreedyDensityCandidates(Input{N: n, Weight: w, Pinned: pinned}, mem)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		if cands[0].Offloaded != 0 {
			t.Fatal("first candidate must offload nothing")
		}
		for _, c := range cands {
			for v := 0; v < n; v++ {
				if pinned[v] && !c.InClient[v] {
					t.Fatal("pinned vertex offloaded")
				}
			}
			if math.Abs(c.CutWeight-CutWeight(n, w, c.InClient)) > 1e-6 {
				t.Fatalf("cut weight mismatch: %v vs %v", c.CutWeight, CutWeight(n, w, c.InClient))
			}
		}
		// The last candidate offloads every unpinned vertex.
		lastOff := cands[len(cands)-1].Offloaded
		unpinned := 0
		for v := 0; v < n; v++ {
			if !pinned[v] {
				unpinned++
			}
		}
		if lastOff != unpinned {
			t.Fatalf("final candidate offloads %d of %d unpinned", lastOff, unpinned)
		}
	}
}

func TestGreedyPrefersDenseMemory(t *testing.T) {
	// Vertex 1: lots of memory, light coupling. Vertex 2: no memory,
	// heavy coupling. Greedy must offload 1 first.
	w := [][]float64{
		{0, 1, 100},
		{1, 0, 0},
		{100, 0, 0},
	}
	mem := []int64{0, 1 << 20, 0}
	cands, err := GreedyDensityCandidates(Input{N: 3, Weight: w, Pinned: []bool{true, false, false}}, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate after the first move must offload vertex 1 only.
	first := cands[1]
	if first.InClient[1] || !first.InClient[2] {
		t.Fatalf("first greedy move = %v, want vertex 1 offloaded", first.InClient)
	}
}

func TestGreedyDegenerateInputs(t *testing.T) {
	if _, err := GreedyDensityCandidates(Input{}, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
	cands, err := GreedyDensityCandidates(Input{N: 2,
		Weight: [][]float64{{0, 1}, {1, 0}},
		Pinned: []bool{true, true}}, nil)
	if err != nil || len(cands) != 1 || cands[0].Offloaded != 0 {
		t.Fatalf("all-pinned: %v %v", cands, err)
	}
	// Short memory slice is tolerated (treated as zeros).
	if _, err := GreedyDensityCandidates(Input{N: 2,
		Weight: [][]float64{{0, 1}, {1, 0}}}, []int64{5}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineKLImprovesBadCut(t *testing.T) {
	// Two heavy cliques; start from a partitioning that splits one.
	n := 6
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	heavy := func(a, b int) { w[a][b], w[b][a] = 50, 50 }
	heavy(0, 1)
	heavy(1, 2)
	heavy(0, 2)
	heavy(3, 4)
	heavy(4, 5)
	heavy(3, 5)
	w[2][3], w[3][2] = 1, 1

	in := Input{N: n, Weight: w, Pinned: []bool{true, false, false, false, false, false}}
	bad := []bool{true, true, false, false, true, true} // strands 4,5 away from 3
	before := CutWeight(n, w, bad)
	refined, cut, err := RefineKL(in, bad)
	if err != nil {
		t.Fatal(err)
	}
	if cut >= before {
		t.Fatalf("refinement did not improve: %v -> %v", before, cut)
	}
	// Swap refinement preserves the offload size.
	var off int
	for _, in := range refined {
		if !in {
			off++
		}
	}
	if off != 2 {
		t.Fatalf("offload size changed: %d", off)
	}
	if !refined[0] {
		t.Fatal("pinned vertex left the client")
	}
}

func TestRefineKLNeverMovesPins(t *testing.T) {
	w := [][]float64{
		{0, 100, 0},
		{100, 0, 0},
		{0, 0, 0},
	}
	in := Input{N: 3, Weight: w, Pinned: []bool{true, false, false}}
	// Vertex 1 offloaded despite heavy coupling to the pinned vertex 0;
	// the only profitable swap exchanges it with vertex 2, never the pin.
	refined, cut, err := RefineKL(in, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !refined[0] || !refined[1] || refined[2] || cut != 0 {
		t.Fatalf("refined = %v cut %v", refined, cut)
	}
}

func TestSortCandidatesByCut(t *testing.T) {
	cands := []Candidate{
		{CutWeight: 5, Offloaded: 1},
		{CutWeight: 1, Offloaded: 9},
		{CutWeight: 1, Offloaded: 2},
	}
	SortCandidatesByCut(cands)
	if cands[0].CutWeight != 1 || cands[0].Offloaded != 2 || cands[2].CutWeight != 5 {
		t.Fatalf("sorted = %+v", cands)
	}
}
