package mincut

import "aide/internal/graph"

// FromGraph converts an execution graph into a dense partitioning input
// using the given edge-weight function. Node IDs map one-to-one onto vertex
// indices.
func FromGraph(g *graph.Graph, w graph.WeightFunc) Input {
	n := g.Len()
	in := Input{
		N:      n,
		Weight: make([][]float64, n),
		Pinned: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		in.Weight[i] = make([]float64, n)
	}
	for _, node := range g.Nodes() {
		in.Pinned[node.ID] = node.Pinned
	}
	for _, e := range g.Edges() {
		wt := w(e)
		in.Weight[e.A][e.B] = wt
		in.Weight[e.B][e.A] = wt
	}
	return in
}
