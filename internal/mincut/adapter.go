package mincut

import (
	"time"

	"aide/internal/graph"
	"aide/internal/telemetry"
)

// FromGraph converts an execution graph into a dense partitioning input
// using the given edge-weight function. Node IDs map one-to-one onto vertex
// indices.
func FromGraph(g *graph.Graph, w graph.WeightFunc) Input {
	var in Input
	fillFromGraph(&in, g, w)
	return in
}

// fillFromGraph populates in from the graph, reusing in's weight matrix,
// rows, and pinned slice whenever their capacity suffices.
func fillFromGraph(in *Input, g *graph.Graph, w graph.WeightFunc) {
	n := g.Len()
	in.N = n
	if cap(in.Weight) < n {
		in.Weight = make([][]float64, n)
	}
	in.Weight = in.Weight[:n]
	for i := range in.Weight {
		if cap(in.Weight[i]) < n {
			in.Weight[i] = make([]float64, n)
			continue
		}
		in.Weight[i] = in.Weight[i][:n]
		for j := range in.Weight[i] {
			in.Weight[i][j] = 0
		}
	}
	if cap(in.Pinned) < n {
		in.Pinned = make([]bool, n)
	}
	in.Pinned = in.Pinned[:n]
	for i := range in.Pinned {
		in.Pinned[i] = false
	}
	for _, node := range g.Nodes() {
		in.Pinned[node.ID] = node.Pinned
	}
	// EdgesFunc iterates the live edge map directly — the dense fill does
	// not care about order, so it skips Edges()'s sort and slice build.
	g.EdgesFunc(func(e *graph.Edge) {
		wt := w(e)
		in.Weight[e.A][e.B] = wt
		in.Weight[e.B][e.A] = wt
	})
}

// Scratch holds reusable partitioning buffers for a repartition hot loop:
// the emulator rebuilds a dense Input from successively larger snapshots
// of the same execution graph on every (re)partitioning, and the N×N
// weight matrix dominates that path's allocations. A Scratch amortizes
// the matrix, the pinned slice, and the heuristic's connectivity array
// across calls, and — because its Inputs are built by construction
// symmetric and non-negative — skips the O(N²) Input.Validate re-check.
//
// A Scratch is not safe for concurrent use, and an Input returned by
// FromGraph aliases the scratch buffers: it is valid only until the next
// FromGraph call on the same Scratch. Candidate slices returned by the
// heuristics are freshly allocated and safe to retain.
type Scratch struct {
	in   Input
	conn []float64

	// Clock and Runtime, both set, time each Candidates run into the
	// histogram (partition-runtime telemetry). Clock is injectable —
	// never time.Now directly — so deterministic replays stay exact;
	// leaving either nil keeps the heuristic free of clock reads.
	Clock   func() time.Time
	Runtime *telemetry.Histogram
}

// FromGraph is FromGraph reusing this scratch's buffers.
func (s *Scratch) FromGraph(g *graph.Graph, w graph.WeightFunc) Input {
	fillFromGraph(&s.in, g, w)
	return s.in
}

// Candidates runs the modified MINCUT heuristic on an input built by
// this scratch's FromGraph, skipping re-validation.
func (s *Scratch) Candidates(in Input) ([]Candidate, error) {
	if len(s.conn) < in.N {
		s.conn = make([]float64, in.N)
	}
	if s.Clock != nil && s.Runtime != nil {
		start := s.Clock()
		cands, err := candidates(in, s.conn[:in.N])
		s.Runtime.Observe(s.Clock().Sub(start))
		return cands, err
	}
	return candidates(in, s.conn[:in.N])
}

// GreedyDensityCandidates runs the greedy memory-density heuristic on an
// input built by this scratch's FromGraph, skipping re-validation.
func (s *Scratch) GreedyDensityCandidates(in Input, memory []int64) ([]Candidate, error) {
	return greedyDensityCandidates(in, memory)
}

// RefineKL runs the Kernighan–Lin swap refinement on an input built by
// this scratch's FromGraph, skipping re-validation.
func (s *Scratch) RefineKL(in Input, inClient []bool) ([]bool, float64, error) {
	return refineKL(in, inClient)
}
