package mincut

import (
	"aide/internal/graph"
)

// Incremental maintains a dense partitioning input across graph deltas
// and re-derives candidate partitionings in O(changed edges) instead of
// O(N²): the weight matrix persists between repartitions and only cells
// named by the delta are rewritten, and the heuristic warm-starts from
// the previously committed partition with local refinement around dirty
// vertices. When the dirty fraction exceeds Threshold — or there is no
// committed partition to refine — it falls back to the full modified
// MINCUT pass over the maintained matrix, which is equivalent by
// construction to a from-scratch run (the matrix is kept byte-equal to a
// fresh fillFromGraph).
//
// The intended loop is single-consumer, mirroring graph.Delta's lineage
// contract:
//
//	d := mon.Delta(inc.Epoch())
//	inc.Update(d, weight)
//	cands, _ := inc.Candidates()
//	...policy picks one...
//	inc.Commit(chosen)
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	// Scratch supplies the persistent matrix, the heuristic's scratch
	// buffers, and the optional Clock/Runtime telemetry pair (both warm
	// and fallback passes observe into the partition-runtime histogram).
	Scratch

	// Threshold is the dirty-edge fraction above which Candidates runs
	// the full pass instead of local refinement. Zero means the default
	// (0.2); negative forces the full pass every time (the equivalence
	// valve used by tests and conservative callers).
	Threshold float64

	epoch     int64
	prev      []bool // committed partition (true = stays on client)
	havePrev  bool
	cut       float64 // maintained cut weight of prev
	offloaded int

	edges      int // distinct class pairs with nonzero weight
	dirtyMark  []bool
	frontier   []int // dirty vertices since last Commit, deduped
	dirtyEdges int
	forceFull  bool // set by Full resyncs until the next full pass
	lastFull   bool
}

// defaultThreshold is the dirty-edge fraction beyond which local
// refinement stops paying for itself and the full pass runs instead.
const defaultThreshold = 0.2

// Epoch returns the graph epoch of the last applied delta; pass it to
// Graph.Delta (or Monitor.Delta) to pull the next increment.
func (inc *Incremental) Epoch() int64 { return inc.epoch }

// WasFull reports whether the most recent Candidates call took the full
// fallback pass rather than warm refinement (diagnostics and tests).
func (inc *Incremental) WasFull() bool { return inc.lastFull }

// N returns the current vertex count of the maintained input.
func (inc *Incremental) N() int { return inc.in.N }

// grow extends the maintained matrix and per-vertex state to n vertices,
// zeroing only the new cells. Vertices never disappear (class IDs are
// dense and stable), so shrink never happens.
func (inc *Incremental) grow(n int) {
	if n <= inc.in.N {
		return
	}
	old := inc.in.N
	in := &inc.in
	if cap(in.Weight) < n {
		rows := make([][]float64, n)
		copy(rows, in.Weight)
		in.Weight = rows
	} else {
		in.Weight = in.Weight[:n]
	}
	for i := 0; i < n; i++ {
		if cap(in.Weight[i]) < n {
			row := make([]float64, n)
			copy(row, in.Weight[i])
			in.Weight[i] = row
		} else {
			row := in.Weight[i][:n]
			for j := old; j < n; j++ {
				row[j] = 0
			}
			in.Weight[i] = row
		}
	}
	if cap(in.Pinned) < n {
		p := make([]bool, n)
		copy(p, in.Pinned)
		in.Pinned = p
	} else {
		in.Pinned = in.Pinned[:n]
		for i := old; i < n; i++ {
			in.Pinned[i] = false
		}
	}
	in.N = n

	for len(inc.prev) < n {
		// New classes default to the offload side until refinement or a
		// full pass places them; pinning is enforced before refinement.
		inc.prev = append(inc.prev, false)
		inc.offloaded++
	}
	for len(inc.dirtyMark) < n {
		inc.dirtyMark = append(inc.dirtyMark, false)
	}
}

// markDirty adds v to the refinement frontier.
func (inc *Incremental) markDirty(v int) {
	if !inc.dirtyMark[v] {
		inc.dirtyMark[v] = true
		inc.frontier = append(inc.frontier, v)
	}
}

// reset zeroes the maintained matrix for a Full resync.
func (inc *Incremental) reset() {
	for i := 0; i < inc.in.N; i++ {
		row := inc.in.Weight[i]
		for j := range row {
			row[j] = 0
		}
		inc.in.Pinned[i] = false
	}
	inc.edges = 0
	inc.forceFull = true
}

// Update applies one graph delta to the maintained input. Cells not
// named by the delta are untouched — O(changed) work. The weight
// function must be the same across Updates (weights are recomputed only
// for changed edges).
func (inc *Incremental) Update(d graph.Delta, w graph.WeightFunc) {
	if d.Full {
		inc.grow(d.N)
		inc.reset()
	}
	inc.grow(d.N)
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		v := int(nd.ID)
		inc.in.Pinned[v] = nd.Pinned
		inc.markDirty(v)
	}
	for i := range d.Edges {
		e := &d.Edges[i]
		a, b := int(e.A), int(e.B)
		old := inc.in.Weight[a][b]
		nw := w(e)
		if old == 0 && nw != 0 {
			inc.edges++
		}
		inc.in.Weight[a][b] = nw
		inc.in.Weight[b][a] = nw
		if inc.havePrev && inc.prev[a] != inc.prev[b] {
			inc.cut += nw - old
		}
		inc.markDirty(a)
		inc.markDirty(b)
		inc.dirtyEdges++
	}
	inc.epoch = d.Epoch
}

// threshold resolves the fallback threshold.
func (inc *Incremental) threshold() float64 {
	if inc.Threshold == 0 {
		return defaultThreshold
	}
	return inc.Threshold
}

// Candidates derives candidate partitionings from the maintained input.
// With a committed partition and a dirty fraction at or below Threshold
// it refines locally around dirty vertices (O(dirty·N)); otherwise it
// runs the full modified MINCUT pass (O(N²)), whose result is identical
// to a from-scratch Candidates call on the same graph.
func (inc *Incremental) Candidates() ([]Candidate, error) {
	if inc.in.N == 0 {
		return nil, ErrNoVertices
	}
	if inc.Clock != nil && inc.Runtime != nil {
		t0 := inc.Clock()
		defer func() { inc.Runtime.Observe(inc.Clock().Sub(t0)) }()
	}

	frac := 1.0
	if inc.edges > 0 {
		frac = float64(inc.dirtyEdges) / float64(inc.edges)
	}
	if !inc.havePrev || inc.forceFull || frac > inc.threshold() {
		inc.lastFull = true
		if len(inc.conn) < inc.in.N {
			inc.conn = make([]float64, inc.in.N)
		}
		cands, err := candidates(inc.in, inc.conn[:inc.in.N])
		if err == nil {
			inc.forceFull = false
		}
		return cands, err
	}
	inc.lastFull = false
	return []Candidate{inc.refine()}, nil
}

// FullCandidates bypasses warm refinement: the full heuristic over the
// maintained matrix, regardless of dirty fraction. The escape valve for
// callers that need the complete candidate family (e.g. when the policy
// rejects every warm candidate).
func (inc *Incremental) FullCandidates() ([]Candidate, error) {
	inc.forceFull = true
	return inc.Candidates()
}

// refine performs greedy improving single-vertex moves around the dirty
// frontier on a working copy of the committed partition. Moving v across
// the cut turns its crossing weight ext into internal weight and its
// internal weight int into crossing weight, so the gain is ext−int; only
// strictly improving moves apply, pinned vertices never leave the
// client, and each applied move enqueues the vertex's neighbors (within
// a bounded budget) so improvements propagate without touching clean
// regions.
func (inc *Incremental) refine() Candidate {
	cur := cloneBools(inc.prev)
	cut := inc.cut
	off := inc.offloaded

	// Pinned vertices must be on the client regardless of history.
	for _, v := range inc.frontier {
		if inc.in.Pinned[v] && !cur[v] {
			ext, internal := inc.sideConn(cur, v)
			cur[v] = true
			cut += internal - ext
			off--
		}
	}

	queue := append([]int(nil), inc.frontier...)
	queued := make(map[int]bool, len(queue))
	for _, v := range queue {
		queued[v] = true
	}
	budget := 4*len(inc.frontier) + 16
	for i := 0; i < len(queue) && budget > 0; i++ {
		v := queue[i]
		queued[v] = false
		if inc.in.Pinned[v] && cur[v] {
			continue // pinned: may not leave the client
		}
		ext, internal := inc.sideConn(cur, v)
		gain := ext - internal
		if gain <= 0 {
			continue
		}
		if cur[v] {
			off++
		} else {
			off--
		}
		cur[v] = !cur[v]
		cut -= gain
		budget--
		// The move changes neighbors' ext/int balance: requeue them.
		row := inc.in.Weight[v]
		for u := 0; u < inc.in.N; u++ {
			if u != v && row[u] != 0 && !queued[u] {
				queued[u] = true
				queue = append(queue, u)
			}
		}
	}
	return Candidate{InClient: cur, CutWeight: cut, Offloaded: off}
}

// sideConn returns v's total edge weight crossing the cut (ext) and
// staying on v's side (internal) under membership cur. One O(N) row
// scan.
func (inc *Incremental) sideConn(cur []bool, v int) (ext, internal float64) {
	row := inc.in.Weight[v]
	side := cur[v]
	for u := 0; u < inc.in.N; u++ {
		if u == v || row[u] == 0 {
			continue
		}
		if cur[u] == side {
			internal += row[u]
		} else {
			ext += row[u]
		}
	}
	return ext, internal
}

// Commit records the candidate the policy selected as the new baseline
// partition and clears the dirty frontier. O(N).
func (inc *Incremental) Commit(c Candidate) {
	if len(c.InClient) != inc.in.N {
		return // stale candidate from before a growth step: ignore
	}
	inc.prev = cloneBools(c.InClient)
	inc.cut = c.CutWeight
	inc.offloaded = c.Offloaded
	inc.havePrev = true
	for _, v := range inc.frontier {
		inc.dirtyMark[v] = false
	}
	inc.frontier = inc.frontier[:0]
	inc.dirtyEdges = 0
}
