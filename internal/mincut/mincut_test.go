package mincut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a symmetric non-negative weight matrix.
func randomGraph(r *rand.Rand, n int, density float64, maxW float64) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < density {
				v := r.Float64() * maxW
				w[i][j] = v
				w[j][i] = v
			}
		}
	}
	return w
}

// bruteMinCut enumerates all 2^(n-1) cuts.
func bruteMinCut(n int, w [][]float64) float64 {
	best := math.Inf(1)
	for mask := 0; mask < 1<<(n-1); mask++ {
		inA := make([]bool, n)
		inA[0] = true // fix vertex 0's side to halve the space
		for v := 1; v < n; v++ {
			if mask&(1<<(v-1)) != 0 {
				inA[v] = true
			}
		}
		// Skip the trivial all-in-A cut.
		all := true
		for v := 0; v < n; v++ {
			if !inA[v] {
				all = false
				break
			}
		}
		if all {
			continue
		}
		if c := CutWeight(n, w, inA); c < best {
			best = c
		}
	}
	return best
}

func TestGlobalMinCutMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		w := randomGraph(r, n, 0.3+r.Float64()*0.7, 100)
		side, weight, err := GlobalMinCut(n, w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := CutWeight(n, w, side); math.Abs(got-weight) > 1e-6 {
			t.Fatalf("trial %d: reported weight %v but cut evaluates to %v", trial, weight, got)
		}
		want := bruteMinCut(n, w)
		if math.Abs(weight-want) > 1e-6 {
			t.Fatalf("trial %d (n=%d): Stoer–Wagner %v, brute force %v", trial, n, weight, want)
		}
		// The returned side must be a proper cut.
		var a, b int
		for _, in := range side {
			if in {
				a++
			} else {
				b++
			}
		}
		if a == 0 || b == 0 {
			t.Fatalf("trial %d: degenerate cut %d/%d", trial, a, b)
		}
	}
}

func TestGlobalMinCutEdgeCases(t *testing.T) {
	if _, _, err := GlobalMinCut(0, nil); err == nil {
		t.Fatal("empty graph must error")
	}
	side, w, err := GlobalMinCut(1, [][]float64{{0}})
	if err != nil || w != 0 || len(side) != 1 {
		t.Fatalf("singleton: side=%v w=%v err=%v", side, w, err)
	}
	// Disconnected graph: min cut weight 0.
	w2 := [][]float64{
		{0, 5, 0, 0},
		{5, 0, 0, 0},
		{0, 0, 0, 7},
		{0, 0, 7, 0},
	}
	_, weight, err := GlobalMinCut(4, w2)
	if err != nil {
		t.Fatal(err)
	}
	if weight != 0 {
		t.Fatalf("disconnected graph min cut = %v, want 0", weight)
	}
}

func TestCandidatesInvariants(t *testing.T) {
	check := func(seed int64, nRaw, pinnedRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%12
		w := randomGraph(r, n, 0.5, 50)
		pinned := make([]bool, n)
		for v := 0; v < n && int(pinnedRaw) > 0; v++ {
			if r.Intn(3) == 0 {
				pinned[v] = true
			}
		}
		cands, err := Candidates(Input{N: n, Weight: w, Pinned: pinned})
		if err != nil {
			return false
		}
		if len(cands) == 0 {
			return false
		}
		prevOffloaded := n + 1
		for _, c := range cands {
			// Pinned vertices never offload.
			for v := 0; v < n; v++ {
				if pinned[v] && !c.InClient[v] {
					return false
				}
			}
			// Reported cut weight must match direct evaluation.
			if math.Abs(c.CutWeight-CutWeight(n, w, c.InClient)) > 1e-6 {
				return false
			}
			// Offload counts shrink monotonically and match membership.
			var off int
			for v := 0; v < n; v++ {
				if !c.InClient[v] {
					off++
				}
			}
			if off != c.Offloaded || off >= prevOffloaded {
				return false
			}
			prevOffloaded = off
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesWithoutPinsIncludesOffloadAll(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 1; n <= 6; n++ {
		w := randomGraph(r, n, 0.8, 10)
		cands, err := Candidates(Input{N: n, Weight: w})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cands[0].Offloaded != n {
			t.Fatalf("n=%d: first candidate offloads %d, want all %d", n, cands[0].Offloaded, n)
		}
	}
}

func TestCandidatesAllPinned(t *testing.T) {
	w := randomGraph(rand.New(rand.NewSource(1)), 4, 1, 10)
	cands, err := Candidates(Input{N: 4, Weight: w, Pinned: []bool{true, true, true, true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Offloaded != 0 {
		t.Fatalf("all-pinned graph: cands = %+v, want single no-op", cands)
	}
}

func TestCandidatesSeparatesClusters(t *testing.T) {
	// Two 3-cliques joined by one light edge; vertex 0 pinned. The best
	// candidate should offload exactly the far clique.
	n := 6
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	heavy := func(a, b int) { w[a][b], w[b][a] = 100, 100 }
	heavy(0, 1)
	heavy(1, 2)
	heavy(0, 2)
	heavy(3, 4)
	heavy(4, 5)
	heavy(3, 5)
	w[2][3], w[3][2] = 1, 1 // the bridge

	cands, err := Candidates(Input{N: n, Weight: w, Pinned: []bool{true, false, false, false, false, false}})
	if err != nil {
		t.Fatal(err)
	}
	bestW := math.Inf(1)
	var best Candidate
	for _, c := range cands {
		if c.Offloaded > 0 && c.CutWeight < bestW {
			bestW = c.CutWeight
			best = c
		}
	}
	want := []bool{true, true, true, false, false, false}
	for v, in := range want {
		if best.InClient[v] != in {
			t.Fatalf("best cut = %v (weight %v), want far clique offloaded", best.InClient, bestW)
		}
	}
	if bestW != 1 {
		t.Fatalf("best cut weight = %v, want 1 (the bridge)", bestW)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	cases := []Input{
		{N: -1},
		{N: 2, Weight: [][]float64{{0, 1}}},
		{N: 2, Weight: [][]float64{{0, 1}, {2, 0}}},                       // asymmetric
		{N: 2, Weight: [][]float64{{0, -1}, {-1, 0}}},                     // negative
		{N: 2, Weight: [][]float64{{0, math.NaN()}, {0, 0}}},              // NaN
		{N: 2, Weight: [][]float64{{0, 1}, {1, 0}}, Pinned: []bool{true}}, // short pins
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid input", i)
		}
	}
}
