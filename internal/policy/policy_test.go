package policy

import (
	"errors"
	"testing"
	"time"

	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/netmodel"
)

// twoClusterGraph builds: pinned UI hub (u), editor (e) tightly coupled to
// UI, document (d1,d2) loosely coupled to editor, plus memory on the
// document side.
func twoClusterGraph() *graph.Graph {
	g := graph.New()
	u := g.Intern("ui")
	u.Pinned = true
	e := g.Intern("edit")
	d1 := g.Intern("doc1")
	d2 := g.Intern("doc2")

	for i := 0; i < 100; i++ {
		g.AddInvocation(u.ID, e.ID, 1000) // heavy UI↔editor
	}
	for i := 0; i < 5; i++ {
		g.AddInvocation(e.ID, d1.ID, 10) // light editor↔doc
	}
	for i := 0; i < 80; i++ {
		g.AddInvocation(d1.ID, d2.ID, 500) // heavy doc-internal
	}
	g.AddObject(u.ID, 10<<10)
	g.AddObject(e.ID, 20<<10)
	g.AddObject(d1.ID, 300<<10)
	g.AddObject(d2.ID, 700<<10)
	return g
}

func candidatesOf(t *testing.T, g *graph.Graph) []mincut.Candidate {
	t.Helper()
	cands, err := mincut.Candidates(mincut.FromGraph(g, graph.BytesWeight))
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

func TestMemoryPolicyChoosesLooseCut(t *testing.T) {
	g := twoClusterGraph()
	mp := MemoryPolicy{MinFreeFraction: 0.20}
	dec, err := mp.Choose(g, 2<<20, candidatesOf(t, g)) // need ≥ 410 KB
	if err != nil {
		t.Fatal(err)
	}
	// The document cluster (1 MB) must offload; UI and editor stay.
	ui, _ := g.Lookup("ui")
	ed, _ := g.Lookup("edit")
	d1, _ := g.Lookup("doc1")
	d2, _ := g.Lookup("doc2")
	if !dec.InClient[ui.ID] || !dec.InClient[ed.ID] {
		t.Fatalf("client side wrong: %+v", dec.InClient)
	}
	if dec.InClient[d1.ID] || dec.InClient[d2.ID] {
		t.Fatalf("documents should offload: %+v", dec.InClient)
	}
	if dec.OffloadBytes != 1000<<10 {
		t.Fatalf("OffloadBytes = %d", dec.OffloadBytes)
	}
	if dec.CutBytes != 50 {
		t.Fatalf("CutBytes = %d, want 50 (5 light calls)", dec.CutBytes)
	}
}

func TestMemoryPolicyInfeasible(t *testing.T) {
	g := twoClusterGraph()
	mp := MemoryPolicy{MinFreeFraction: 0.9}
	_, err := mp.Choose(g, 2<<20, candidatesOf(t, g)) // need 1.8 MB > total offloadable
	if !errors.Is(err, ErrNotBeneficial) {
		t.Fatalf("err = %v, want ErrNotBeneficial", err)
	}
}

func TestMemoryPolicyRejectsBadHeap(t *testing.T) {
	g := twoClusterGraph()
	mp := MemoryPolicy{MinFreeFraction: 0.2}
	if _, err := mp.Choose(g, 0, candidatesOf(t, g)); err == nil {
		t.Fatal("zero heap capacity must error")
	}
}

// cpuGraph: compute cluster with big CPU time, loosely coupled; ui pinned.
func cpuGraph(commCalls int) *graph.Graph {
	g := graph.New()
	u := g.Intern("ui")
	u.Pinned = true
	c1 := g.Intern("compute1")
	c2 := g.Intern("compute2")
	g.AddCPU(u.ID, 1*time.Second)
	g.AddCPU(c1.ID, 5*time.Second)
	g.AddCPU(c2.ID, 4*time.Second)
	for i := 0; i < commCalls; i++ {
		g.AddInvocation(u.ID, c1.ID, 100)
	}
	for i := 0; i < 3000; i++ {
		g.AddInvocation(c1.ID, c2.ID, 100)
	}
	return g
}

func TestCPUPolicyOffloadsWhenBeneficial(t *testing.T) {
	g := cpuGraph(10) // negligible crossing
	cp := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN()}
	dec, err := cp.Choose(g, candidatesOf(t, g))
	if err != nil {
		t.Fatalf("should be beneficial: %v", err)
	}
	local := cp.LocalTime(g)
	if dec.PredictedTime >= local {
		t.Fatalf("predicted %v not better than local %v", dec.PredictedTime, local)
	}
	if dec.OffloadCPU < 9*time.Second {
		t.Fatalf("compute cluster not offloaded: %+v", dec)
	}
}

func TestCPUPolicyDeclinesWhenCommDominates(t *testing.T) {
	// 50k crossings × ~2.45 ms ≈ 120 s of communication versus ~6.4 s of
	// possible execution gain: offloading must be declined.
	g := cpuGraph(50000)
	cp := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN()}
	_, err := cp.Choose(g, candidatesOf(t, g))
	if !errors.Is(err, ErrNotBeneficial) {
		t.Fatalf("err = %v, want ErrNotBeneficial", err)
	}
	// The forced variant still returns its best guess.
	dec, err := cp.ChooseBest(g, candidatesOf(t, g))
	if err != nil {
		t.Fatalf("ChooseBest: %v", err)
	}
	if dec.PredictedTime <= cp.LocalTime(g) {
		t.Fatal("forced decision should predict worse than local here")
	}
}

func TestCPUPolicyMinCPUFractionFiltersIdleOffloads(t *testing.T) {
	g := cpuGraph(10)
	// Add an idle class with memory but no CPU.
	idle := g.Intern("idle")
	g.AddObject(idle.ID, 1<<20)
	cp := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN(), MinCPUFraction: 0.5}
	dec, err := cp.Choose(g, candidatesOf(t, g))
	if err != nil {
		t.Fatalf("choose: %v", err)
	}
	if dec.OffloadCPU < 5*time.Second {
		t.Fatalf("candidate below the CPU floor chosen: %+v", dec)
	}
}

func TestCPUPolicyClientSlowdownScalesDecision(t *testing.T) {
	g := cpuGraph(2000)
	base := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN()}
	slow := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN(), ClientSlowdown: 20}
	// On a fast client the 2000 crossings may not pay off; on a 20× slower
	// client the execution term dominates and offloading must win.
	if _, err := slow.Choose(g, candidatesOf(t, g)); err != nil {
		t.Fatalf("slow client should offload: %v", err)
	}
	localFast, localSlow := base.LocalTime(g), slow.LocalTime(g)
	if localSlow != 20*localFast {
		t.Fatalf("LocalTime scaling wrong: %v vs %v", localFast, localSlow)
	}
}

func TestCPUPolicyEnhancementsReducePrediction(t *testing.T) {
	g := graph.New()
	u := g.Intern("ui")
	u.Pinned = true
	c := g.Intern("compute")
	m := g.Intern("math")
	m.Pinned = true
	m.Stateless = true
	arr := g.Intern("arr")
	arr.Array = true
	g.AddCPU(c.ID, 10*time.Second)
	for i := 0; i < 5000; i++ {
		g.AddInvocation(c.ID, m.ID, 16)
	}
	for i := 0; i < 5000; i++ {
		g.AddAccess(c.ID, arr.ID, 64)
	}

	inClient := []bool{true, false, true, false} // offload compute+arr
	plain := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN()}
	enhanced := CPUPolicy{Speedup: 3.5, Link: netmodel.WaveLAN(), StatelessNativeLocal: true, ArrayGranularity: true}
	if p, e := plain.Predict(g, inClient), enhanced.Predict(g, inClient); e >= p {
		t.Fatalf("enhancements must reduce predicted time: %v vs %v", p, e)
	}
}

func TestMemoryTrigger(t *testing.T) {
	tr := MemoryTrigger{FreeFraction: 0.05, Tolerance: 3}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cap := int64(100)
	if tr.Report(50, cap, true) {
		t.Fatal("healthy heap fired")
	}
	if tr.Report(4, cap, true) || tr.Report(4, cap, true) {
		t.Fatal("fired before tolerance reached")
	}
	if !tr.Report(4, cap, true) {
		t.Fatal("third consecutive low report must fire")
	}
	// After firing the count resets.
	if tr.Report(4, cap, true) {
		t.Fatal("must not refire immediately")
	}
	// A healthy report breaks the streak.
	tr.Report(4, cap, true)
	tr.Report(50, cap, true)
	if tr.Report(4, cap, true) || tr.Report(4, cap, true) {
		t.Fatal("streak did not reset")
	}
	tr.Reset()
	if tr.Report(4, cap, true) {
		t.Fatal("Reset did not clear the streak")
	}
}

func TestMemoryTriggerValidate(t *testing.T) {
	bad := []MemoryTrigger{
		{FreeFraction: -0.1, Tolerance: 1},
		{FreeFraction: 1.5, Tolerance: 1},
		{FreeFraction: 0.05, Tolerance: 0},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trigger accepted", i)
		}
	}
}

func TestPeriodicTrigger(t *testing.T) {
	p := PeriodicTrigger{Every: 10 * time.Second}
	if p.Tick(0) {
		t.Fatal("first tick must not fire (no baseline yet)")
	}
	if p.Tick(5 * time.Second) {
		t.Fatal("fired early")
	}
	if !p.Tick(10 * time.Second) {
		t.Fatal("did not fire at period")
	}
	if p.Tick(15 * time.Second) {
		t.Fatal("fired again before next period")
	}
	if !p.Tick(21 * time.Second) {
		t.Fatal("did not fire at second period")
	}
	disabled := PeriodicTrigger{}
	if disabled.Tick(time.Hour) {
		t.Fatal("zero-period trigger must never fire")
	}
}

func TestSweepSpaceMatchesPaperRanges(t *testing.T) {
	space := SweepSpace()
	if len(space) != 7*3*8 {
		t.Fatalf("sweep size = %d, want 168", len(space))
	}
	for _, p := range space {
		if p.TriggerFreeFraction < 0.02 || p.TriggerFreeFraction > 0.50 {
			t.Fatalf("threshold %v outside paper range", p.TriggerFreeFraction)
		}
		if p.Tolerance < 1 || p.Tolerance > 3 {
			t.Fatalf("tolerance %d outside paper range", p.Tolerance)
		}
		if p.MinFreeFraction < 0.10 || p.MinFreeFraction > 0.80 {
			t.Fatalf("min-free %v outside paper range", p.MinFreeFraction)
		}
	}
	if InitialParams() != (Params{TriggerFreeFraction: 0.05, Tolerance: 3, MinFreeFraction: 0.20}) {
		t.Fatal("initial policy drifted from the paper's §5.1 values")
	}
}
