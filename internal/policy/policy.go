// Package policy implements AIDE's triggering and partitioning policies
// (paper §3.3–§3.4, §5).
//
// A trigger decides *when* to consider offloading: the prototype fires when
// consecutive garbage-collection cycles report that memory is nearly
// exhausted, or on periodic re-evaluation. A partitioning policy decides
// *whether and what* to offload: it evaluates the candidate partitionings
// produced by the modified MINCUT heuristic against resource constraints
// and a cost function, and selects the candidate that best satisfies the
// overall policy — or rejects offloading entirely when no candidate is
// beneficial.
package policy

import (
	"errors"
	"fmt"
	"time"

	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/netmodel"
	"aide/internal/telemetry"
)

// ErrNotBeneficial is returned when no candidate partitioning satisfies the
// policy: the platform should keep the application local (paper §5.2:
// "the system determined that there was no beneficial partitioning, and
// correctly decided not to offload any objects").
var ErrNotBeneficial = errors.New("policy: no beneficial partitioning")

// Decision describes the partitioning a policy selected.
type Decision struct {
	// InClient[v] reports whether the class with graph NodeID v stays on
	// the client.
	InClient []bool

	// CutWeight is the policy cost-function value of the chosen cut.
	CutWeight float64

	// OffloadBytes is the memory occupied by objects of offloaded classes:
	// the amount of Java heap the offload frees on the client.
	OffloadBytes int64

	// OffloadClasses is the number of classes placed on the surrogate.
	OffloadClasses int

	// CutBytes is the historical information transfer across the cut, used
	// to predict interaction bandwidth.
	CutBytes int64

	// CutInteractions is the historical interaction-event count across the
	// cut.
	CutInteractions int64

	// OffloadCPU is the recorded CPU time attributed to offloaded classes.
	OffloadCPU time.Duration

	// PredictedTime is the predicted application execution time under this
	// placement (CPU policies only; zero for memory policies).
	PredictedTime time.Duration
}

// Offloads reports whether the decision moves anything to the surrogate.
func (d *Decision) Offloads() bool { return d.OffloadClasses > 0 }

// evaluate fills the placement-derived fields of a Decision for a
// candidate.
func evaluate(g *graph.Graph, c mincut.Candidate) Decision {
	d := Decision{
		InClient:  c.InClient,
		CutWeight: c.CutWeight,
	}
	for _, n := range g.Nodes() {
		if !c.InClient[n.ID] {
			d.OffloadBytes += n.Memory
			d.OffloadClasses++
			d.OffloadCPU += n.CPUTime
		}
	}
	g.EdgesFunc(func(e *graph.Edge) {
		if c.InClient[e.A] != c.InClient[e.B] {
			d.CutBytes += e.Bytes
			d.CutInteractions += e.Interactions()
		}
	})
	return d
}

// MemoryPolicy selects a partitioning that relieves a memory constraint:
// any acceptable partitioning must free at least MinFreeFraction of the
// Java heap, and among acceptable candidates the one minimizing the cost
// function (historical bytes transferred across the cut) wins. Conceptually
// this offloads a sufficient amount of information while placing the
// smallest demand on network bandwidth (paper §3.3).
type MemoryPolicy struct {
	// MinFreeFraction is the minimum fraction of the heap capacity that an
	// acceptable partitioning must free (paper §5.1 uses 0.20).
	MinFreeFraction float64

	// Weight is the cost function over edges. Nil defaults to
	// graph.BytesWeight, the paper's cost function.
	Weight graph.WeightFunc

	// Chosen and Rejected, when non-nil, count decision outcomes: Chosen
	// increments when a candidate is accepted, Rejected when every
	// candidate fails the policy (ErrNotBeneficial). Nil-safe no-ops
	// otherwise, so the deterministic replay paths are unaffected.
	Chosen, Rejected *telemetry.Counter
}

// Choose evaluates the candidates against the policy. heapCapacity is the
// client Java heap size in bytes.
func (p MemoryPolicy) Choose(g *graph.Graph, heapCapacity int64, cands []mincut.Candidate) (Decision, error) {
	if heapCapacity <= 0 {
		return Decision{}, fmt.Errorf("policy: heap capacity %d must be positive", heapCapacity)
	}
	need := int64(p.MinFreeFraction * float64(heapCapacity))
	var best Decision
	found := false
	for _, c := range cands {
		d := evaluate(g, c)
		if d.OffloadBytes < need || d.OffloadClasses == 0 {
			continue
		}
		if !found || d.CutWeight < best.CutWeight {
			best = d
			found = true
		}
	}
	if !found {
		p.Rejected.Inc()
		return Decision{}, ErrNotBeneficial
	}
	p.Chosen.Inc()
	return best, nil
}

// ChooseDense is Choose for the incremental repartition path, where no
// full graph snapshot exists: mem[v] is the live memory attributed to
// the class with vertex ID v (maintained from graph deltas). The
// acceptance rule and cost ranking match Choose exactly; the returned
// Decision carries only placement, CutWeight, OffloadBytes, and
// OffloadClasses — the history-derived fields (CutBytes,
// CutInteractions, OffloadCPU) stay zero because computing them would
// reintroduce the O(edges) full-graph walk this path exists to avoid.
func (p MemoryPolicy) ChooseDense(mem []int64, heapCapacity int64, cands []mincut.Candidate) (Decision, error) {
	if heapCapacity <= 0 {
		return Decision{}, fmt.Errorf("policy: heap capacity %d must be positive", heapCapacity)
	}
	need := int64(p.MinFreeFraction * float64(heapCapacity))
	var best Decision
	found := false
	for _, c := range cands {
		d := Decision{InClient: c.InClient, CutWeight: c.CutWeight, OffloadClasses: c.Offloaded}
		for v, m := range mem {
			if v < len(c.InClient) && !c.InClient[v] {
				d.OffloadBytes += m
			}
		}
		if d.OffloadBytes < need || d.OffloadClasses == 0 {
			continue
		}
		if !found || d.CutWeight < best.CutWeight {
			best = d
			found = true
		}
	}
	if !found {
		p.Rejected.Inc()
		return Decision{}, ErrNotBeneficial
	}
	p.Chosen.Inc()
	return best, nil
}

// CPUPolicy selects a partitioning that relieves a processing constraint:
// it predicts, from the execution history, the application execution time
// under every candidate placement — class CPU time runs at surrogate speed
// when offloaded, and every cut interaction is charged a remote round trip
// — and picks the fastest. Offloading only happens when the prediction
// beats local execution (beneficial offloading, paper §2, §5.2).
type CPUPolicy struct {
	// Speedup is the surrogate CPU speed relative to the client (the paper
	// measured 3.5 between a PC and a Jornada 547).
	Speedup float64

	// ClientSlowdown scales the graph's recorded CPU times (measured at
	// tracing-PC speed) to the client device's speed. Zero defaults to 1.
	ClientSlowdown float64

	// Link models the client↔surrogate network.
	Link netmodel.Link

	// Weight is the cost function used to rank candidate cuts before
	// prediction. Nil defaults to graph.BytesWeight.
	Weight graph.WeightFunc

	// StatelessNativeLocal mirrors the §5.2 native enhancement in the
	// prediction: cut edges whose pinned endpoint is a stateless-native
	// class cost nothing, because those invocations execute on the
	// calling device.
	StatelessNativeLocal bool

	// ArrayGranularity mirrors the §5.2 array enhancement: cut edges
	// touching a primitive-array pseudo-class are discounted, because
	// each array object is placed with its dominant user and only the
	// minority of its traffic still crosses.
	ArrayGranularity bool

	// MinCPUFraction is the share of recorded CPU time a candidate must
	// offload to count as relieving the processing constraint; candidates
	// below it are ignored. Zero defaults to 0.25. Without this floor the
	// cheapest "offload" is a handful of idle classes, which relieves
	// nothing.
	MinCPUFraction float64
}

// arrayDiscount is the fraction of an array edge's cost that survives
// object-granularity placement: the minority-side traffic.
const arrayDiscount = 0.5

func (p CPUPolicy) slowdown() float64 {
	if p.ClientSlowdown <= 0 {
		return 1
	}
	return p.ClientSlowdown
}

// LocalTime returns the predicted all-on-client execution time implied by
// the execution history.
func (p CPUPolicy) LocalTime(g *graph.Graph) time.Duration {
	return time.Duration(float64(g.TotalCPU()) * p.slowdown())
}

// Predict returns the predicted execution time of the candidate placement.
func (p CPUPolicy) Predict(g *graph.Graph, inClient []bool) time.Duration {
	var total time.Duration
	for _, n := range g.Nodes() {
		t := float64(n.CPUTime) * p.slowdown()
		if !inClient[n.ID] {
			t /= p.Speedup
		}
		total += time.Duration(t)
	}
	g.EdgesFunc(func(e *graph.Edge) {
		if inClient[e.A] != inClient[e.B] {
			total += time.Duration(float64(p.commCost(e)) * p.edgeFactor(g, e))
		}
	})
	return total
}

// edgeFactor scales a cut edge's communication cost for the active
// enhancements: stateless natives execute where invoked (free), and array
// objects follow their dominant user (discounted).
func (p CPUPolicy) edgeFactor(g *graph.Graph, e *graph.Edge) float64 {
	a, b := g.Node(e.A), g.Node(e.B)
	if p.StatelessNativeLocal && ((a.Pinned && a.Stateless) || (b.Pinned && b.Stateless)) {
		return 0
	}
	if p.ArrayGranularity && (a.Array || b.Array) {
		return arrayDiscount
	}
	return 1
}

// commCost charges a cut edge its historical interactions as remote round
// trips: one RTT per interaction plus serialization of all transferred
// bytes and per-message headers.
func (p CPUPolicy) commCost(e *graph.Edge) time.Duration {
	count := e.Interactions()
	if count == 0 {
		return 0
	}
	perMsg := p.Link.RPC(0, 0) // RTT + two headers
	bits := float64(e.Bytes) * 8
	payload := time.Duration(bits / p.Link.BandwidthBps * float64(time.Second))
	return time.Duration(count)*perMsg + payload
}

// ChooseBest evaluates the candidates and returns the placement with the
// lowest predicted execution time, whether or not it beats local execution.
// Figure 10's "Initial"/"Native"/"Array" study bars force the offload this
// way to expose the granularity and native-method effects.
func (p CPUPolicy) ChooseBest(g *graph.Graph, cands []mincut.Candidate) (Decision, error) {
	if p.Speedup <= 0 {
		return Decision{}, fmt.Errorf("policy: speedup %v must be positive", p.Speedup)
	}
	minCPU := p.MinCPUFraction
	if minCPU <= 0 {
		minCPU = 0.25
	}
	need := time.Duration(float64(g.TotalCPU()) * minCPU)
	var best Decision
	found := false
	for _, c := range cands {
		d := evaluate(g, c)
		if d.OffloadClasses == 0 || d.OffloadCPU < need {
			continue
		}
		d.PredictedTime = p.Predict(g, c.InClient)
		if !found || d.PredictedTime < best.PredictedTime {
			best = d
			found = true
		}
	}
	if !found {
		return Decision{}, ErrNotBeneficial
	}
	return best, nil
}

// Choose evaluates the candidates and returns the fastest placement if it
// beats local execution ("beneficial offloading", paper §2).
func (p CPUPolicy) Choose(g *graph.Graph, cands []mincut.Candidate) (Decision, error) {
	best, err := p.ChooseBest(g, cands)
	if err != nil {
		return Decision{}, err
	}
	if local := p.LocalTime(g); best.PredictedTime >= local {
		// Report the best rejected prediction so callers can show the
		// "790 s predicted vs 750 s local" style comparison.
		return best, fmt.Errorf("%w: best predicted %v vs local %v",
			ErrNotBeneficial, best.PredictedTime, local)
	}
	return best, nil
}
