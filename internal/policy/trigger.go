package policy

import (
	"fmt"
	"time"
)

// MemoryTrigger decides when memory pressure warrants a partitioning
// attempt. The paper's prototype triggers partitioning "when three
// successive garbage collection cycles indicate that additional memory
// cannot be freed or that less than 5% of memory is available" (§5.1); the
// threshold and the tolerance to low-memory signals are the two parameters
// the Figure 7 policy sweep varies.
type MemoryTrigger struct {
	// FreeFraction is the low-memory threshold: a GC report with free/cap
	// below it counts as a low-memory signal. Figure 7 sweeps 0.02–0.50.
	FreeFraction float64

	// Tolerance is the number of consecutive low-memory signals required
	// before the trigger fires. Figure 7 sweeps 1–3.
	Tolerance int

	consecutive int
}

// Validate reports whether the trigger parameters are usable.
func (t *MemoryTrigger) Validate() error {
	if t.FreeFraction < 0 || t.FreeFraction > 1 {
		return fmt.Errorf("policy: free fraction %v outside [0,1]", t.FreeFraction)
	}
	if t.Tolerance < 1 {
		return fmt.Errorf("policy: tolerance %d must be at least 1", t.Tolerance)
	}
	return nil
}

// Report feeds one garbage-collection cycle's outcome into the trigger and
// reports whether partitioning should be attempted now. A cycle counts as
// a low-memory signal when the post-cycle free fraction is below the
// threshold. (The paper's other firing condition — "additional memory
// cannot be freed" — corresponds to a failed demand collection, which the
// platform handles through the allocation-failure path rather than the
// periodic trigger; see the emulator's hard-pressure partition and the
// VM's pressure handler.) freed is retained for diagnostics.
func (t *MemoryTrigger) Report(free, capacity int64, freed bool) bool {
	_ = freed
	low := capacity > 0 && float64(free)/float64(capacity) < t.FreeFraction
	if !low {
		t.consecutive = 0
		return false
	}
	t.consecutive++
	if t.consecutive >= t.Tolerance {
		t.consecutive = 0
		return true
	}
	return false
}

// Reset clears accumulated low-memory signals, e.g. after an offload.
func (t *MemoryTrigger) Reset() { t.consecutive = 0 }

// PeriodicTrigger fires on periodic re-evaluation of the placement (paper
// §2: "Based on either resource variation triggers or periodic
// re-evaluation, the platform should be able to adapt"). It operates on a
// caller-supplied clock so that it works identically under simulated and
// wall-clock time.
type PeriodicTrigger struct {
	// Every is the re-evaluation period.
	Every time.Duration

	last    time.Duration
	started bool
}

// Tick reports whether the period has elapsed at the given clock reading.
func (t *PeriodicTrigger) Tick(now time.Duration) bool {
	if t.Every <= 0 {
		return false
	}
	if !t.started {
		t.started = true
		t.last = now
		return false
	}
	if now-t.last >= t.Every {
		t.last = now
		return true
	}
	return false
}

// DisconnectTrigger pins the application local after a surrogate
// disconnection. Losing a surrogate mid-run is evidence the environment is
// unstable (the paper's §2 ad-hoc platforms form over transient wireless
// links), so immediately re-offloading to another — or a reconnected —
// surrogate risks thrashing. The trigger suppresses offloading for a
// cooldown measured in garbage-collection cycles, the same clock the
// memory trigger runs on.
type DisconnectTrigger struct {
	// CooldownCycles is how many GC cycles offloading stays suppressed
	// after a disconnection. Zero means the default of 3 (mirroring the
	// paper's three-cycle memory-trigger tolerance).
	CooldownCycles int

	remaining int
	fired     int
}

// Fire records a disconnection and (re)starts the cooldown.
func (t *DisconnectTrigger) Fire() {
	n := t.CooldownCycles
	if n <= 0 {
		n = 3
	}
	t.remaining = n
	t.fired++
}

// Report feeds one garbage-collection cycle into the trigger, aging the
// cooldown toward expiry.
func (t *DisconnectTrigger) Report() {
	if t.remaining > 0 {
		t.remaining--
	}
}

// Active reports whether offloading is currently suppressed.
func (t *DisconnectTrigger) Active() bool { return t.remaining > 0 }

// Fired returns how many disconnections the trigger has recorded.
func (t *DisconnectTrigger) Fired() int { return t.fired }

// Reset clears the cooldown, e.g. when a fresh surrogate attaches.
func (t *DisconnectTrigger) Reset() { t.remaining = 0 }

// Params bundles the three policy parameters the Figure 7 sweep varies.
type Params struct {
	// TriggerFreeFraction is the low-memory threshold (0.02–0.50).
	TriggerFreeFraction float64

	// Tolerance is the consecutive-signal requirement (1–3).
	Tolerance int

	// MinFreeFraction is the minimum heap fraction a partitioning must
	// free (0.10–0.80).
	MinFreeFraction float64

	// LazyMinAccesses is the field-heat threshold for lazy state
	// transfer: a field ships eagerly in a lazy migration once the
	// monitor has seen at least this many accesses to it. Zero keeps the
	// default of 1 (any observed access makes the field hot); the value
	// only matters when lazy migration is enabled.
	LazyMinAccesses int64
}

// String renders the parameters the way EXPERIMENTS.md reports them.
func (p Params) String() string {
	return fmt.Sprintf("trigger<%.0f%% ×%d, free≥%.0f%%",
		p.TriggerFreeFraction*100, p.Tolerance, p.MinFreeFraction*100)
}

// InitialParams returns the paper's initial policy: trigger at 5% free with
// three consecutive signals, free at least 20% of memory (§5.1).
func InitialParams() Params {
	return Params{TriggerFreeFraction: 0.05, Tolerance: 3, MinFreeFraction: 0.20}
}

// SweepSpace enumerates the Figure 7 policy space: the partition triggering
// threshold varied from 2% to 50% of memory remaining free, the tolerance
// to low-memory signals varied from one to three events, and the minimum
// amount of memory to free varied from 10% to 80%.
func SweepSpace() []Params {
	thresholds := []float64{0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
	tolerances := []int{1, 2, 3}
	minFree := []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80}
	out := make([]Params, 0, len(thresholds)*len(tolerances)*len(minFree))
	for _, th := range thresholds {
		for _, tol := range tolerances {
			for _, mf := range minFree {
				out = append(out, Params{
					TriggerFreeFraction: th,
					Tolerance:           tol,
					MinFreeFraction:     mf,
				})
			}
		}
	}
	return out
}
