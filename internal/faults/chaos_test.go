package faults_test

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
	"aide/internal/vm"
)

// counterRegistry builds the chaos workload: a Counter whose inc method
// is deliberately non-idempotent — executing it twice for one call, or
// losing one, breaks the contiguous sequence of returned values.
func counterRegistry(t testing.TB) *vm.Registry {
	t.Helper()
	reg := vm.NewRegistry()
	spec := vm.ClassSpec{
		Name:   "Counter",
		Fields: []string{"n"},
		Methods: []vm.MethodSpec{
			{Name: "inc", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				cur, err := th.GetField(self, "n")
				if err != nil {
					return vm.Nil(), err
				}
				n := cur.I + 1
				return vm.Int(n), th.SetField(self, "n", vm.Int(n))
			}},
			{Name: "get", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return th.GetField(self, "n")
			}},
			{Name: "self", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return vm.RefOf(self), nil
			}},
		},
	}
	if _, err := reg.Register(spec); err != nil {
		t.Fatalf("register Counter: %v", err)
	}
	return reg
}

// chaosPlatform is a client/surrogate pair whose client-side transport
// runs through a fault injector.
type chaosPlatform struct {
	client, surrogate *vm.VM
	pc, ps            *remote.Peer
	inj               *faults.Transport
}

func newChaosPlatform(t testing.TB, prof faults.Profile, clientOpts remote.Options) *chaosPlatform {
	t.Helper()
	reg := counterRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})
	ct, st := remote.NewChannelPair()
	inj := faults.Wrap(ct, prof)
	pc := remote.NewPeer(client, inj, clientOpts)
	ps := remote.NewPeer(surrogate, st, remote.Options{Workers: 2})
	p := &chaosPlatform{client: client, surrogate: surrogate, pc: pc, ps: ps, inj: inj}
	t.Cleanup(func() {
		_ = p.pc.Close() // may report the injected disconnect cause
		_ = p.ps.Close()
	})
	return p
}

// failoverLocal installs the standard disconnect-failover handler on the
// client VM: detach the peer slot, re-home its stubs locally, retry. It
// mirrors what aide.Client does and returns a counter of invocations.
func failoverLocal(client *vm.VM) *int32 {
	var mu sync.Mutex
	var calls int32
	client.SetFailoverHandler(func(idx int) bool {
		mu.Lock()
		defer mu.Unlock()
		calls++
		client.DetachPeer(idx)
		client.ReclaimStubs(idx)
		return true
	})
	return &calls
}

// chaosWorkload offloads one Counter and runs serial incs, asserting the
// returned values form the exact sequence 1..n — the exactly-once
// property: a lost call would stall or error, a duplicated execution
// would skip a value.
func chaosWorkload(t *testing.T, p *chaosPlatform, incs int) {
	t.Helper()
	th := p.client.NewThread()
	id, err := th.New("Counter", 4096)
	if err != nil {
		t.Fatalf("new Counter: %v", err)
	}
	p.client.SetRoot("ctr", id)
	if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	for i := 1; i <= incs; i++ {
		ret, err := th.Invoke(id, "inc")
		if err != nil {
			t.Fatalf("inc %d: %v", i, err)
		}
		if ret.I != int64(i) {
			t.Fatalf("inc %d returned %d: a fault leaked a lost or duplicated execution", i, ret.I)
		}
	}
	got, err := th.GetField(id, "n")
	if err != nil {
		t.Fatalf("final get: %v", err)
	}
	if got.I != int64(incs) {
		t.Fatalf("final count = %d, want %d", got.I, incs)
	}
}

// TestChaosProfiles runs the tier-1 remote behaviors under each fault
// profile: with bounded retries and the receiver dedupe window, every
// call must return its exact result — faults may slow the run, never
// corrupt it.
func TestChaosProfiles(t *testing.T) {
	profiles := map[string]faults.Profile{
		"drop":    {Seed: 11, DropRate: 0.20},
		"dup":     {Seed: 12, DupRate: 0.25},
		"delay":   {Seed: 13, DelayRate: 0.30, DelayMax: 2 * time.Millisecond},
		"corrupt": {Seed: 14, CorruptRate: 0.20},
		"mixed":   {Seed: 15, DropRate: 0.08, DupRate: 0.08, DelayRate: 0.08, CorruptRate: 0.08, DelayMax: time.Millisecond},
	}
	for name, prof := range profiles {
		prof := prof
		t.Run(name, func(t *testing.T) {
			p := newChaosPlatform(t, prof, remote.Options{
				Workers:   2,
				RetryMax:  8,
				RetryBase: 200 * time.Microsecond,
			})
			chaosWorkload(t, p, 150)

			st := p.inj.Stats()
			switch name {
			case "drop":
				if st.Dropped == 0 {
					t.Fatalf("drop profile injected nothing: %+v", st)
				}
			case "dup":
				if st.Duplicated == 0 {
					t.Fatalf("dup profile injected nothing: %+v", st)
				}
				if p.ps.Stats().DuplicatesDropped == 0 {
					t.Fatal("surrogate dedupe window never fired under the dup profile")
				}
			case "delay":
				if st.Delayed == 0 {
					t.Fatalf("delay profile injected nothing: %+v", st)
				}
			case "corrupt":
				if st.Corrupted == 0 {
					t.Fatalf("corrupt profile injected nothing: %+v", st)
				}
			}
			if (st.Dropped > 0 || st.Corrupted > 0) && p.pc.Stats().SendRetries == 0 {
				t.Fatal("injected send failures but the peer never retried")
			}
		})
	}
}

// TestExactlyOnceReleasesUnderFaults is the release property test:
// duplicated release batches must decref exactly once (receiver dedupe),
// dropped batch sends must be retried until delivered, and the final
// accounting must balance — no lost releases, no double releases.
func TestExactlyOnceReleasesUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof faults.Profile
	}{
		{"drop", faults.Profile{Seed: 21, DropRate: 0.3}},
		{"dup", faults.Profile{Seed: 22, DupRate: 0.4}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := newChaosPlatform(t, tc.prof, remote.Options{
				Workers:          2,
				RetryMax:         10,
				RetryBase:        100 * time.Microsecond,
				ReleaseBatchSize: 8, // 24 releases → 3 wire batches
			})
			th := p.client.NewThread()
			const objects = 24
			ids := make([]vm.ObjectID, objects)
			for i := range ids {
				id, err := th.New("Counter", 256)
				if err != nil {
					t.Fatalf("new: %v", err)
				}
				p.client.SetRoot(rootName(i), id)
				ids[i] = id
			}
			if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
				t.Fatalf("offload: %v", err)
			}

			// Drop every root: collecting the stubs emits one release per
			// object, batched, faulted, retried, deduped.
			th.ClearTemps()
			for i := range ids {
				p.client.SetRoot(rootName(i), vm.InvalidObject)
			}
			p.client.Collect()

			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				cs, ss := p.pc.Stats(), p.ps.Stats()
				if cs.ReleasesDropped > 0 {
					t.Fatalf("lost releases: %d dropped after retry budget", cs.ReleasesDropped)
				}
				if ss.ReleasesReceived > cs.ReleasesSent {
					t.Fatalf("double release: received %d > sent %d", ss.ReleasesReceived, cs.ReleasesSent)
				}
				if cs.ReleasesSent == int64(objects) && ss.ReleasesReceived == int64(objects) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			cs, ss := p.pc.Stats(), p.ps.Stats()
			if cs.ReleasesSent != int64(objects) || ss.ReleasesReceived != int64(objects) {
				t.Fatalf("releases sent %d / received %d, want %d / %d",
					cs.ReleasesSent, ss.ReleasesReceived, objects, objects)
			}
			// The surrogate can now actually collect the released objects.
			p.surrogate.Collect()
			if live := p.surrogate.Heap().Live; live != 0 {
				t.Fatalf("surrogate live = %d after all releases, want 0", live)
			}
		})
	}
}

func rootName(i int) string {
	return "obj" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestSeverAtRandomPoint is the acceptance chaos profile: 200 seeded
// iterations, each severing the connection hard at a random point in the
// workload. Every call must return either the correct remote result or
// the correct local-fallback result (the counter restarts from zero when
// the client reclaims the stub), with no hangs, no duplicate executions,
// and no skipped values within a run.
func TestSeverAtRandomPoint(t *testing.T) {
	const iterations = 200
	rng := rand.New(rand.NewSource(0xA1DE))
	for it := 0; it < iterations; it++ {
		severAt := 1 + rng.Int63n(60)
		severIteration(t, it, severAt)
	}
}

func severIteration(t *testing.T, it int, severAt int64) {
	t.Helper()
	p := newChaosPlatform(t, faults.Profile{SeverAfter: severAt}, remote.Options{
		Workers:     2,
		RetryMax:    2,
		RetryBase:   50 * time.Microsecond,
		CallTimeout: 5 * time.Second, // converts a would-be hang into a visible failure
	})
	failoverLocal(p.client)

	th := p.client.NewThread()
	id, err := th.New("Counter", 1024)
	if err != nil {
		t.Fatalf("iter %d: new: %v", it, err)
	}
	p.client.SetRoot("ctr", id)

	offloaded := true
	if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
		// The sever hit during migration: the batch was never converted
		// to stubs, so the object stays local and the run continues
		// degraded from the start.
		offloaded = false
	}

	const incs = 40
	prev := int64(0)
	resets := 0
	for i := 0; i < incs; i++ {
		start := time.Now()
		ret, err := th.Invoke(id, "inc")
		if err != nil {
			t.Fatalf("iter %d (sever@%d, offloaded=%v): inc %d failed: %v", it, severAt, offloaded, i, err)
		}
		if d := time.Since(start); d > 10*time.Second {
			t.Fatalf("iter %d: inc %d took %v — effectively hung", it, i, d)
		}
		switch {
		case ret.I == prev+1:
			// Contiguous: the call executed exactly once on whichever
			// side currently owns the object.
		case ret.I == 1 && resets == 0 && offloaded:
			// The one permitted reset: the surrogate vanished and the
			// reclaimed local copy restarted from zeroed fields.
			resets++
		default:
			t.Fatalf("iter %d (sever@%d): inc %d returned %d after %d (resets=%d): lost or duplicated execution",
				it, severAt, i, ret.I, prev, resets)
		}
		prev = ret.I
	}

	// After the sever the object must be local again (or have never
	// left); a final read must come from the local heap.
	if o := p.client.Object(id); o == nil {
		t.Fatalf("iter %d: counter vanished", it)
	} else if o.Remote && p.pc.State() == remote.StateDisconnected {
		t.Fatalf("iter %d: stub still points at a disconnected peer", it)
	}
}

// TestHalfCloseTimesOutAndFailsOver is the regression test for the
// half-close hang: a blackholed transport (sends vanish silently, no
// error, no replies) must not block Peer.Call forever. The deadline
// expires, consecutive timeouts escalate to disconnected, and the next
// call falls back to local execution.
func TestHalfCloseTimesOutAndFailsOver(t *testing.T) {
	p := newChaosPlatform(t, faults.Profile{}, remote.Options{
		Workers:         2,
		CallTimeout:     40 * time.Millisecond,
		RetryMax:        -1,
		DisconnectAfter: 2,
	})
	calls := failoverLocal(p.client)

	th := p.client.NewThread()
	id, err := th.New("Counter", 1024)
	if err != nil {
		t.Fatal(err)
	}
	p.client.SetRoot("ctr", id)
	if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	if ret, err := th.Invoke(id, "inc"); err != nil || ret.I != 1 {
		t.Fatalf("healthy inc: ret=%v err=%v", ret, err)
	}

	// Silently half-close the link: requests vanish, no transport error.
	p.inj.Blackhole()

	// First call: must return (not hang) with a deadline error.
	done := make(chan error, 1)
	go func() {
		_, err := th.Invoke(id, "inc")
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, remote.ErrCallTimeout) {
			t.Fatalf("blackholed call err = %v, want ErrCallTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed call hung: the half-close deadline regression is back")
	}
	if st := p.pc.State(); st != remote.StateDegraded {
		t.Fatalf("state after first timeout = %v, want degraded", st)
	}

	// Second call: the timeout escalates to disconnected and the VM
	// fails the call over to the reclaimed local copy, which restarts
	// from zero.
	ret, err := th.Invoke(id, "inc")
	if err != nil {
		t.Fatalf("escalating call must fall back locally, got %v", err)
	}
	if ret.I != 1 {
		t.Fatalf("local fallback returned %d, want 1 (zeroed reclaimed copy)", ret.I)
	}
	if *calls == 0 {
		t.Fatal("failover handler never ran")
	}
	if st := p.pc.State(); st != remote.StateDisconnected {
		t.Fatalf("state = %v, want disconnected", st)
	}
	if p.pc.Stats().CallTimeouts < 2 {
		t.Fatalf("CallTimeouts = %d, want >= 2", p.pc.Stats().CallTimeouts)
	}

	// Later calls stay local and keep counting without errors.
	for i := int64(2); i <= 4; i++ {
		ret, err := th.Invoke(id, "inc")
		if err != nil || ret.I != i {
			t.Fatalf("post-fallback inc: ret=%v err=%v, want %d", ret, err, i)
		}
	}
}

// TestOnDownFiresOnceWithDisconnectCause pins the OnDown contract: an
// involuntary loss fires the hook exactly once with a cause wrapping
// ErrDisconnected, while a plain Close never fires it.
func TestOnDownFiresOnceWithDisconnectCause(t *testing.T) {
	reg := counterRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 1 << 20})

	t.Run("sever fires", func(t *testing.T) {
		ct, st := remote.NewChannelPair()
		inj := faults.Wrap(ct, faults.Profile{})
		var mu sync.Mutex
		var causes []error
		pc := remote.NewPeer(client, inj, remote.Options{Workers: 1, OnDown: func(p *remote.Peer, cause error) {
			mu.Lock()
			causes = append(causes, cause)
			mu.Unlock()
		}})
		ps := remote.NewPeer(surrogate, st, remote.Options{Workers: 1})
		defer func() { _ = ps.Close() }()

		if err := inj.Sever(); err != nil {
			t.Fatalf("sever: %v", err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(causes)
			mu.Unlock()
			if n > 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(causes) != 1 {
			t.Fatalf("OnDown fired %d times, want exactly 1", len(causes))
		}
		if !errors.Is(causes[0], remote.ErrDisconnected) {
			t.Fatalf("OnDown cause = %v, want it to wrap ErrDisconnected", causes[0])
		}
		if !errors.Is(causes[0], vm.ErrPeerGone) {
			t.Fatalf("OnDown cause = %v, must wrap vm.ErrPeerGone for the failover path", causes[0])
		}
		_ = pc.Close()
	})

	t.Run("plain close does not fire", func(t *testing.T) {
		ct, st := remote.NewChannelPair()
		fired := make(chan struct{}, 1)
		pc := remote.NewPeer(client, ct, remote.Options{Workers: 1, OnDown: func(p *remote.Peer, cause error) {
			fired <- struct{}{}
		}})
		ps := remote.NewPeer(surrogate, st, remote.Options{Workers: 1})
		if err := pc.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_ = ps.Close()
		select {
		case <-fired:
			t.Fatal("OnDown fired on a deliberate Close")
		case <-time.After(50 * time.Millisecond):
		}
	})
}

// TestChaosRaceStress hammers the faulted platform from several
// goroutines so the race detector sees the retry path, dedupe window,
// state machine, and injector under contention, ending with a sever
// while calls are in flight.
func TestChaosRaceStress(t *testing.T) {
	p := newChaosPlatform(t, faults.Profile{
		Seed:      31,
		DropRate:  0.05,
		DupRate:   0.05,
		DelayRate: 0.05,
		DelayMax:  500 * time.Microsecond,
	}, remote.Options{
		Workers:     4,
		RetryMax:    6,
		RetryBase:   100 * time.Microsecond,
		CallTimeout: 5 * time.Second,
	})
	failoverLocal(p.client)

	setup := p.client.NewThread()
	const workers = 4
	ids := make([]vm.ObjectID, workers)
	for i := range ids {
		id, err := setup.New("Counter", 512)
		if err != nil {
			t.Fatal(err)
		}
		p.client.SetRoot(rootName(i), id)
		ids[i] = id
	}
	if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
		t.Fatalf("offload: %v", err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id vm.ObjectID) {
			defer wg.Done()
			th := p.client.NewThread()
			for n := 0; n < 40; n++ {
				if _, err := th.Invoke(id, "inc"); err != nil {
					errc <- err
					return
				}
			}
		}(ids[i])
	}
	// Sever mid-flight; every outstanding call must resolve, via remote
	// completion or local fallback.
	time.Sleep(2 * time.Millisecond)
	if err := p.inj.Sever(); err != nil {
		t.Logf("sever: %v", err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		// Post-sever failures are only legal if they are NOT hangs or
		// duplicate executions; with the failover handler installed every
		// call should in fact succeed.
		if err != nil && !strings.Contains(err.Error(), "context") {
			t.Fatalf("call failed across sever despite failover: %v", err)
		}
	}
}
