package faults

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzInjectorCorrupt drives MutateFrame — the mutation engine behind
// the corrupt fault — with arbitrary frames and seeds. Invariants: it
// never panics, never aliases or modifies the caller's frame, stays
// within its documented growth bound (at most 16 appended bytes), never
// returns nil, and is deterministic for a given seed.
func FuzzInjectorCorrupt(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0x01, 0x09, 0x0B}, int64(0xFA17))         // an encoded ping frame
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0xFF}, int64(-7)) // zero run + high byte
	f.Add(bytes.Repeat([]byte{0xAB}, 256), int64(1<<40))   // long frame
	f.Fuzz(func(t *testing.T, frame []byte, seed int64) {
		orig := append([]byte(nil), frame...)
		out := MutateFrame(rand.New(rand.NewSource(seed)), frame)
		if out == nil {
			t.Fatal("MutateFrame returned nil")
		}
		if len(out) > len(frame)+16 {
			t.Fatalf("mutated frame grew %d -> %d, bound is +16", len(frame), len(out))
		}
		if !bytes.Equal(frame, orig) {
			t.Fatal("MutateFrame modified the caller's frame in place")
		}
		again := MutateFrame(rand.New(rand.NewSource(seed)), frame)
		if !bytes.Equal(out, again) {
			t.Fatalf("MutateFrame is not deterministic for seed %d: %x vs %x", seed, out, again)
		}
		if len(frame) == 0 && len(out) != 1 {
			t.Fatalf("empty frame must mutate to exactly one byte, got %d", len(out))
		}
	})
}
