// Package faults provides a deterministic, seedable fault-injecting
// decorator around a remote.Transport. It can drop, delay, duplicate,
// and corrupt individual messages, and hard-sever or silently blackhole
// the connection, on a scripted schedule, a pseudo-random one, or both.
// The chaos suite drives the platform's robustness machinery (deadlines,
// retries, the connection-state machine, local failover) through it; the
// same profile and seed always produce the same fault sequence.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/remote"
	"aide/internal/telemetry"
)

// Kind enumerates the injectable faults.
type Kind int

// Fault kinds.
const (
	// Drop discards the message and reports a send error — a detectable
	// loss, which the peer's send-retry machinery may recover.
	Drop Kind = iota + 1

	// Delay delivers the message after a pause on a separate goroutine,
	// so later messages may overtake it.
	Delay

	// Dup delivers the message twice; the receiver's dedupe window must
	// suppress the second execution.
	Dup

	// Corrupt encodes the message, mutates the frame bytes, runs the
	// decoder over the result (the codec must never panic on a mutated
	// frame), and reports a send error.
	Corrupt

	// Sever hard-closes the underlying transport: every later operation
	// on either side fails, the peers' receive loops observe the death.
	Sever

	// Blackhole half-closes the connection silently: sends report
	// success but vanish and received traffic stops, the hang scenario
	// only deadlines can detect.
	Blackhole
)

// String returns the fault's name.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case Corrupt:
		return "corrupt"
	case Sever:
		return "sever"
	case Blackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Action schedules one scripted fault: the OnSend-th Send (1-based)
// suffers Fault, regardless of the random rates.
type Action struct {
	OnSend int64
	Fault  Kind
}

// Profile configures an injector. The zero value injects nothing.
type Profile struct {
	// Seed drives the pseudo-random schedule; the same seed and traffic
	// produce the same fault sequence. Zero is a valid (fixed) seed.
	Seed int64

	// Per-send probabilities of each random fault, evaluated in this
	// order: drop, corrupt, dup, delay. At most one fires per message.
	DropRate    float64
	CorruptRate float64
	DupRate     float64
	DelayRate   float64

	// DelayMin and DelayMax bound an injected delay; a delay of zero
	// duration delivers immediately (still on a separate goroutine, so
	// reordering remains possible). DelayMax of zero defaults to 1ms.
	DelayMin, DelayMax time.Duration

	// SeverAfter hard-severs the connection on the Nth send (1-based);
	// zero never severs. BlackholeAfter silently swallows traffic from
	// the Nth send on; zero never blackholes.
	SeverAfter     int64
	BlackholeAfter int64

	// Script lists exact-send faults that override the random schedule.
	Script []Action

	// Telemetry, when non-nil, registers aide_faults_* counters mirroring
	// Stats on the registry, so scraped metrics show which faults the
	// injector actually delivered. Nil keeps the injector registry-free.
	Telemetry *telemetry.Registry
}

// Injected-fault metric names.
const (
	metricFaultSends      = "aide_faults_sends_total"
	metricFaultDropped    = "aide_faults_dropped_total"
	metricFaultDelayed    = "aide_faults_delayed_total"
	metricFaultDuplicated = "aide_faults_duplicated_total"
	metricFaultCorrupted  = "aide_faults_corrupted_total"
	metricFaultSwallowed  = "aide_faults_blackholed_total"
)

// faultMetrics mirrors Stats onto a telemetry registry. All fields are
// nil-safe no-ops when no registry was configured.
type faultMetrics struct {
	sends      *telemetry.Counter
	dropped    *telemetry.Counter
	delayed    *telemetry.Counter
	duplicated *telemetry.Counter
	corrupted  *telemetry.Counter
	swallowed  *telemetry.Counter
}

func newFaultMetrics(reg *telemetry.Registry) faultMetrics {
	if reg == nil {
		return faultMetrics{}
	}
	return faultMetrics{
		sends:      reg.Counter(metricFaultSends, "Messages offered to the fault injector."),
		dropped:    reg.Counter(metricFaultDropped, "Messages dropped by fault injection."),
		delayed:    reg.Counter(metricFaultDelayed, "Messages delayed by fault injection."),
		duplicated: reg.Counter(metricFaultDuplicated, "Messages duplicated by fault injection."),
		corrupted:  reg.Counter(metricFaultCorrupted, "Messages corrupted by fault injection."),
		swallowed:  reg.Counter(metricFaultSwallowed, "Messages silently swallowed by an injected blackhole."),
	}
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	Sends                int64
	Dropped              int64
	Delayed              int64
	Duplicated           int64
	Corrupted            int64
	SwallowedByBlackhole int64
}

// Injection errors. Drop and Corrupt surface through Send so the peer's
// retry machinery can observe a detectable loss; ErrSevered marks
// operations on a severed or closed injector.
var (
	ErrInjectedDrop    = errors.New("faults: injected drop")
	ErrInjectedCorrupt = errors.New("faults: injected corruption")
	ErrSevered         = errors.New("faults: connection severed")
)

// Transport is the fault-injecting decorator. Wrap one side's transport
// (or both, with independent profiles) before handing it to
// remote.NewPeer.
type Transport struct {
	inner remote.Transport
	prof  Profile

	// rng drives the random schedule, guarded so concurrent senders draw
	// a deterministic sequence (their interleaving is the only source of
	// nondeterminism; seeded single-threaded runs are fully repeatable).
	mu  sync.Mutex
	rng *rand.Rand

	script map[int64]Kind

	sends      atomic.Int64
	severed    atomic.Bool
	blackholed atomic.Bool

	closeOnce sync.Once
	closed    chan struct{}
	delays    sync.WaitGroup

	// tm mirrors the atomic counters below onto a telemetry registry when
	// the profile carries one; every field is a nil-safe no-op otherwise.
	tm faultMetrics

	dropped    atomic.Int64
	delayed    atomic.Int64
	duplicated atomic.Int64
	corrupted  atomic.Int64
	swallowed  atomic.Int64
}

var _ remote.Transport = (*Transport)(nil)

// Wrap decorates inner with the profile's fault schedule.
func Wrap(inner remote.Transport, prof Profile) *Transport {
	if prof.DelayMax <= 0 {
		prof.DelayMax = time.Millisecond
	}
	if prof.DelayMin > prof.DelayMax {
		prof.DelayMin = prof.DelayMax
	}
	t := &Transport{
		inner:  inner,
		prof:   prof,
		rng:    rand.New(rand.NewSource(prof.Seed)),
		closed: make(chan struct{}),
		tm:     newFaultMetrics(prof.Telemetry),
	}
	if len(prof.Script) > 0 {
		t.script = make(map[int64]Kind, len(prof.Script))
		for _, a := range prof.Script {
			t.script[a.OnSend] = a.Fault
		}
	}
	return t
}

// Stats returns a snapshot of the injector's fault counts.
func (t *Transport) Stats() Stats {
	return Stats{
		Sends:                t.sends.Load(),
		Dropped:              t.dropped.Load(),
		Delayed:              t.delayed.Load(),
		Duplicated:           t.duplicated.Load(),
		Corrupted:            t.corrupted.Load(),
		SwallowedByBlackhole: t.swallowed.Load(),
	}
}

// Sever hard-closes the underlying transport now, as if the link
// physically died: both peers' receive loops observe the failure.
func (t *Transport) Sever() error {
	if t.severed.CompareAndSwap(false, true) {
		return t.inner.Close()
	}
	return nil
}

// Blackhole silently half-closes the connection from now on: sends
// report success but vanish, and incoming traffic stops without any
// error. Only deadlines can detect this state.
func (t *Transport) Blackhole() {
	t.blackholed.Store(true)
}

// decide picks the fault for send n, scripted faults first, then the
// random rates (at most one per message).
func (t *Transport) decide(n int64) Kind {
	if f, ok := t.script[n]; ok {
		return f
	}
	if t.prof.SeverAfter > 0 && n >= t.prof.SeverAfter {
		return Sever
	}
	if t.prof.BlackholeAfter > 0 && n >= t.prof.BlackholeAfter {
		return Blackhole
	}
	p := t.prof
	if p.DropRate == 0 && p.CorruptRate == 0 && p.DupRate == 0 && p.DelayRate == 0 {
		return 0
	}
	t.mu.Lock()
	r := t.rng.Float64()
	t.mu.Unlock()
	switch {
	case r < p.DropRate:
		return Drop
	case r < p.DropRate+p.CorruptRate:
		return Corrupt
	case r < p.DropRate+p.CorruptRate+p.DupRate:
		return Dup
	case r < p.DropRate+p.CorruptRate+p.DupRate+p.DelayRate:
		return Delay
	}
	return 0
}

// Send applies the scheduled fault for this message, if any, and
// otherwise forwards to the wrapped transport.
func (t *Transport) Send(m *remote.Message) error {
	if t.blackholed.Load() {
		t.swallowed.Add(1)
		t.tm.swallowed.Inc()
		return nil
	}
	if t.severed.Load() {
		return fmt.Errorf("%w: %w", remote.ErrClosed, ErrSevered)
	}
	n := t.sends.Add(1)
	t.tm.sends.Inc()
	switch t.decide(n) {
	case Drop:
		t.dropped.Add(1)
		t.tm.dropped.Inc()
		return fmt.Errorf("%w: send %d", ErrInjectedDrop, n)
	case Corrupt:
		return t.corrupt(m, n)
	case Dup:
		if err := t.inner.Send(m); err != nil {
			return err
		}
		t.duplicated.Add(1)
		t.tm.duplicated.Inc()
		return t.inner.Send(m)
	case Delay:
		return t.delay(m)
	case Sever:
		if err := t.Sever(); err != nil {
			return fmt.Errorf("%w: %v", ErrSevered, err)
		}
		return fmt.Errorf("%w: %w", remote.ErrClosed, ErrSevered)
	case Blackhole:
		t.Blackhole()
		t.swallowed.Add(1)
		t.tm.swallowed.Inc()
		return nil
	}
	return t.inner.Send(m)
}

// corrupt encodes m, mutates the frame, proves the decoder survives the
// mutation (never panics; it may or may not return an error), and
// reports the corruption as a send failure — a real transport would
// fail its frame checksum the same way.
func (t *Transport) corrupt(m *remote.Message, n int64) error {
	frame, err := remote.AppendFrame(nil, m)
	if err != nil {
		return err
	}
	t.mu.Lock()
	mutated := MutateFrame(t.rng, frame)
	t.mu.Unlock()
	if dm, derr := remote.DecodeFrame(mutated); derr == nil && dm != nil {
		// The mutation decoded cleanly (e.g. a no-op flip); it still
		// counts as corruption — the checksum layer rejects it.
		_ = dm
	}
	t.corrupted.Add(1)
	t.tm.corrupted.Inc()
	return fmt.Errorf("%w: send %d", ErrInjectedCorrupt, n)
}

// delay re-delivers a deep copy of m after a pause on its own goroutine.
// The copy matters: Transport senders may reuse the message as soon as
// Send returns.
func (t *Transport) delay(m *remote.Message) error {
	cp, err := cloneMessage(m)
	if err != nil {
		return err
	}
	t.mu.Lock()
	d := t.prof.DelayMin
	if span := t.prof.DelayMax - t.prof.DelayMin; span > 0 {
		d += time.Duration(t.rng.Int63n(int64(span)))
	}
	t.mu.Unlock()
	t.delayed.Add(1)
	t.tm.delayed.Inc()
	t.delays.Add(1)
	go func() {
		defer t.delays.Done()
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-t.closed:
			return
		}
		if t.blackholed.Load() || t.severed.Load() {
			return
		}
		if err := t.inner.Send(cp); err != nil {
			// The transport died while the message was in flight; a real
			// network loses it the same way.
			t.dropped.Add(1)
			t.tm.dropped.Inc()
		}
	}()
	return nil
}

// cloneMessage deep-copies a message through the wire codec.
func cloneMessage(m *remote.Message) (*remote.Message, error) {
	frame, err := remote.AppendFrame(nil, m)
	if err != nil {
		return nil, err
	}
	return remote.DecodeFrame(frame)
}

// Recv forwards to the wrapped transport. A blackholed injector swallows
// arrivals and blocks until the injector (or the inner transport) is
// closed — the silent half-close the deadline machinery exists for.
func (t *Transport) Recv() (*remote.Message, error) {
	for {
		if t.blackholed.Load() {
			<-t.closed
			return nil, fmt.Errorf("%w: %w", remote.ErrClosed, ErrSevered)
		}
		m, err := t.inner.Recv()
		if err != nil {
			return nil, err
		}
		if t.blackholed.Load() {
			t.swallowed.Add(1)
			t.tm.swallowed.Inc()
			continue
		}
		return m, nil
	}
}

// Close closes the injector and the wrapped transport, and waits for any
// in-flight delayed deliveries to settle.
func (t *Transport) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		err = t.inner.Close()
		t.delays.Wait()
	})
	return err
}

// MutateFrame returns a mutated copy of an encoded frame: byte flips,
// truncation, zero-fill runs, or appended garbage, chosen by rng. The
// corrupt fault and the codec fuzz target share it, so the fuzzer
// explores exactly the mutations the injector performs.
func MutateFrame(rng *rand.Rand, frame []byte) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	if len(out) == 0 {
		return []byte{byte(rng.Intn(256))}
	}
	switch rng.Intn(4) {
	case 0: // flip 1..4 random bytes
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		}
	case 1: // truncate
		out = out[:rng.Intn(len(out))]
	case 2: // zero-fill a run
		start := rng.Intn(len(out))
		end := start + 1 + rng.Intn(len(out)-start)
		for i := start; i < end; i++ {
			out[i] = 0
		}
	case 3: // append garbage
		tail := make([]byte, 1+rng.Intn(16))
		for i := range tail {
			tail[i] = byte(rng.Intn(256))
		}
		out = append(out, tail...)
	}
	return out
}
