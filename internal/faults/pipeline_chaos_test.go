package faults_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
	"aide/internal/vm"
)

// offloadCounter creates one Counter, roots it, and offloads it.
func offloadCounter(t *testing.T, p *chaosPlatform) vm.ObjectID {
	t.Helper()
	th := p.client.NewThread()
	id, err := th.New("Counter", 1024)
	if err != nil {
		t.Fatalf("new Counter: %v", err)
	}
	p.client.SetRoot("ctr", id)
	if _, _, err := p.pc.Offload([]string{"Counter"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	return id
}

// chainPipeline builds the standard three-call chain: self, then two
// dependent incs through the returned promise.
func chainPipeline(client *vm.VM, id vm.ObjectID) (*vm.Pipeline, *vm.Promise, *vm.Promise, *vm.Promise) {
	p := client.NewPipeline()
	a := p.Invoke(id, "self")
	b := p.Invoke(a, "inc")
	c := p.Invoke(a, "inc")
	return p, a, b, c
}

// TestPipelineSeverMidFrameFailsDependentsOnce: the link dies on the
// frame send itself, with no failover handler installed. Every promise
// of the frame must yield the same disconnection error exactly once —
// no partial execution, no hang, no zero-value "success".
func TestPipelineSeverMidFrameFailsDependentsOnce(t *testing.T) {
	// Send 1 is the migration; send 2 is the MsgInvokeBatch frame.
	p := newChaosPlatform(t, faults.Profile{SeverAfter: 2}, remote.Options{
		Workers:     2,
		RetryMax:    2,
		RetryBase:   50 * time.Microsecond,
		CallTimeout: 5 * time.Second,
	})
	id := offloadCounter(t, p)

	pl, a, b, c := chainPipeline(p.client, id)
	res, err := pl.Run(context.Background())
	if err == nil {
		t.Fatalf("run over a severed link succeeded: %v", res)
	}
	var perr *vm.PipelineError
	if !errors.As(err, &perr) {
		t.Fatalf("run err = %v, want *PipelineError", err)
	}
	if !errors.Is(err, remote.ErrDisconnected) {
		t.Fatalf("run err = %v, want it to wrap ErrDisconnected", err)
	}
	_, aerr := a.Value()
	_, berr := b.Value()
	_, cerr := c.Value()
	if aerr == nil || aerr != berr || berr != cerr {
		t.Fatalf("promises must share one frame error, got %v / %v / %v", aerr, berr, cerr)
	}
	// Nothing executed: the frame never reached the surrogate.
	if got, err := p.surrogate.NewThread().GetField(p.client.Object(id).PeerID, "n"); err == nil && got.I != 0 {
		t.Fatalf("surrogate counter = %d, want 0 (frame must not have executed)", got.I)
	}
}

// TestPipelineSeverFailsOverToSequential: same mid-frame sever, but with
// the standard failover handler installed. The pipeline re-executes
// sequentially on the reclaimed local copy — observably sequential: the
// zeroed counter counts 1, 2 in call order.
func TestPipelineSeverFailsOverToSequential(t *testing.T) {
	p := newChaosPlatform(t, faults.Profile{SeverAfter: 2}, remote.Options{
		Workers:     2,
		RetryMax:    2,
		RetryBase:   50 * time.Microsecond,
		CallTimeout: 5 * time.Second,
	})
	calls := failoverLocal(p.client)
	id := offloadCounter(t, p)

	pl, a, b, c := chainPipeline(p.client, id)
	res, err := pl.Run(context.Background())
	if err != nil {
		t.Fatalf("run with failover: %v", err)
	}
	if av, aerr := a.Value(); aerr != nil || av.Kind != vm.KindRef || av.Ref != id {
		t.Fatalf("promise a = %v err=%v, want the reclaimed local ref", av, aerr)
	}
	if bv, _ := b.Value(); bv.I != 1 {
		t.Fatalf("first inc = %d, want 1 (zeroed reclaimed copy, executed first)", bv.I)
	}
	if cv, _ := c.Value(); cv.I != 2 {
		t.Fatalf("second inc = %d, want 2 (executed after the first)", cv.I)
	}
	if res[2].I != 2 {
		t.Fatalf("res = %v, want final count 2", res)
	}
	if *calls == 0 {
		t.Fatal("failover handler never ran")
	}
	if o := p.client.Object(id); o == nil || o.Remote {
		t.Fatal("counter must be local after failover")
	}
}

// TestPipelineExactlyOnceUnderDropAndDup: batched frames under a lossy,
// duplicating link. Retransmitted frames must be deduped to a single
// execution and dropped frames retried: each chain's two incs extend the
// exact sequence 1..2n with no skips or repeats.
func TestPipelineExactlyOnceUnderDropAndDup(t *testing.T) {
	p := newChaosPlatform(t, faults.Profile{
		Seed:     41,
		DropRate: 0.18,
		DupRate:  0.22,
	}, remote.Options{
		Workers:   2,
		RetryMax:  10,
		RetryBase: 100 * time.Microsecond,
	})
	id := offloadCounter(t, p)

	const chains = 40
	for i := 0; i < chains; i++ {
		pl, _, b, c := chainPipeline(p.client, id)
		if _, err := pl.Run(context.Background()); err != nil {
			t.Fatalf("chain %d: %v", i, err)
		}
		want := int64(2 * i)
		if bv, _ := b.Value(); bv.I != want+1 {
			t.Fatalf("chain %d first inc = %d, want %d: a frame was lost or executed twice", i, bv.I, want+1)
		}
		if cv, _ := c.Value(); cv.I != want+2 {
			t.Fatalf("chain %d second inc = %d, want %d", i, cv.I, want+2)
		}
	}
	th := p.client.NewThread()
	if got, err := th.Invoke(id, "get"); err != nil || got.I != 2*chains {
		t.Fatalf("final count = %v err=%v, want %d", got, err, 2*chains)
	}

	st := p.inj.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("profile injected nothing interesting: %+v", st)
	}
	cs := p.pc.Stats()
	if cs.PipelineFrames != chains {
		t.Fatalf("PipelineFrames = %d, want %d", cs.PipelineFrames, chains)
	}
	// Dropped frame sends must show up in the batch-specific retry
	// counter, distinct from single-call retries.
	if cs.BatchSendRetries == 0 {
		t.Fatalf("BatchSendRetries = 0 with %d drops over %d frames", st.Dropped, chains)
	}
	if p.ps.Stats().DuplicatesDropped == 0 {
		t.Fatal("dedupe window never fired despite duplicated frames")
	}
}
