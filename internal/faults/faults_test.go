package faults_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
)

// sink is a trivial inner transport: Send records the message, Recv
// blocks until Close. It keeps the injector unit tests free of the
// channel transport's pairing semantics.
type sink struct {
	mu     sync.Mutex
	msgs   []*remote.Message
	closed chan struct{}
	once   sync.Once
}

func newSink() *sink { return &sink{closed: make(chan struct{})} }

func (s *sink) Send(m *remote.Message) error {
	select {
	case <-s.closed:
		return remote.ErrClosed
	default:
	}
	s.mu.Lock()
	cp := *m
	s.msgs = append(s.msgs, &cp)
	s.mu.Unlock()
	return nil
}

func (s *sink) Recv() (*remote.Message, error) {
	<-s.closed
	return nil, remote.ErrClosed
}

func (s *sink) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

func (s *sink) delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func TestScriptedFaultSchedule(t *testing.T) {
	inner := newSink()
	inj := faults.Wrap(inner, faults.Profile{
		Script: []faults.Action{
			{OnSend: 1, Fault: faults.Drop},
			{OnSend: 2, Fault: faults.Corrupt},
			{OnSend: 4, Fault: faults.Dup},
		},
	})
	defer func() {
		if err := inj.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	m := &remote.Message{Kind: remote.MsgPing, ID: 7}
	if err := inj.Send(m); !errors.Is(err, faults.ErrInjectedDrop) {
		t.Fatalf("send 1: err = %v, want ErrInjectedDrop", err)
	}
	if err := inj.Send(m); !errors.Is(err, faults.ErrInjectedCorrupt) {
		t.Fatalf("send 2: err = %v, want ErrInjectedCorrupt", err)
	}
	if err := inj.Send(m); err != nil {
		t.Fatalf("send 3: %v", err)
	}
	if err := inj.Send(m); err != nil {
		t.Fatalf("send 4 (dup): %v", err)
	}

	// Sends 1 and 2 never reached the wire; send 3 arrived once, send 4
	// twice.
	if got := inner.delivered(); got != 3 {
		t.Fatalf("inner deliveries = %d, want 3 (one normal + one duplicated)", got)
	}
	st := inj.Stats()
	if st.Sends != 4 || st.Dropped != 1 || st.Corrupted != 1 || st.Duplicated != 1 {
		t.Fatalf("stats = %+v, want 4 sends, 1 dropped, 1 corrupted, 1 duplicated", st)
	}
}

func TestDelayDeliversACopy(t *testing.T) {
	inner := newSink()
	inj := faults.Wrap(inner, faults.Profile{
		DelayMin: time.Millisecond,
		DelayMax: 2 * time.Millisecond,
		Script:   []faults.Action{{OnSend: 1, Fault: faults.Delay}},
	})

	m := &remote.Message{Kind: remote.MsgInfo, ID: 42, Class: "Doc"}
	if err := inj.Send(m); err != nil {
		t.Fatalf("delayed send: %v", err)
	}
	// The sender may reuse the message as soon as Send returns; the
	// injector must have deep-copied it.
	m.Class = "CLOBBERED"
	m.ID = 0

	deadline := time.Now().Add(2 * time.Second)
	for inner.delivered() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	inner.mu.Lock()
	defer inner.mu.Unlock()
	if len(inner.msgs) != 1 {
		t.Fatalf("delayed message never delivered")
	}
	if got := inner.msgs[0]; got.ID != 42 || got.Class != "Doc" {
		t.Fatalf("delivered message = id %d class %q, want the pre-clobber copy (42, Doc)", got.ID, got.Class)
	}
	if st := inj.Stats(); st.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", st.Delayed)
	}
	if err := inj.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	run := func() faults.Stats {
		inner := newSink()
		inj := faults.Wrap(inner, faults.Profile{
			Seed:        99,
			DropRate:    0.2,
			CorruptRate: 0.1,
			DupRate:     0.1,
			DelayRate:   0.1,
			DelayMax:    time.Microsecond,
		})
		m := &remote.Message{Kind: remote.MsgPing}
		for i := 0; i < 500; i++ {
			_ = inj.Send(m) // injected errors are the point
		}
		if err := inj.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		return inj.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules:\n  a = %+v\n  b = %+v", a, b)
	}
	if a.Dropped == 0 || a.Corrupted == 0 || a.Duplicated == 0 || a.Delayed == 0 {
		t.Fatalf("500 sends at these rates should exercise every fault: %+v", a)
	}
}

func TestSeverFailsLaterSends(t *testing.T) {
	ct, st := remote.NewChannelPair()
	inj := faults.Wrap(ct, faults.Profile{SeverAfter: 3})

	m := &remote.Message{Kind: remote.MsgPing}
	for i := 0; i < 2; i++ {
		if err := inj.Send(m); err != nil {
			t.Fatalf("send %d before sever: %v", i+1, err)
		}
	}
	err := inj.Send(m)
	if !errors.Is(err, faults.ErrSevered) {
		t.Fatalf("send at sever point: err = %v, want ErrSevered", err)
	}
	if !errors.Is(err, remote.ErrClosed) {
		t.Fatalf("sever error must wrap remote.ErrClosed for the peer's closed-detection: %v", err)
	}
	// The underlying transport is hard-closed: the other side fails too.
	if err := st.Send(m); err == nil {
		t.Fatal("peer side send succeeded after sever")
	}
	if err := inj.Send(m); !errors.Is(err, faults.ErrSevered) {
		t.Fatalf("send after sever: err = %v, want ErrSevered", err)
	}
	if err := inj.Close(); err != nil {
		t.Logf("close after sever: %v", err) // inner already closed; either way is fine
	}
}

func TestBlackholeSwallowsSilently(t *testing.T) {
	inner := newSink()
	inj := faults.Wrap(inner, faults.Profile{BlackholeAfter: 2})

	m := &remote.Message{Kind: remote.MsgPing}
	if err := inj.Send(m); err != nil {
		t.Fatalf("send before blackhole: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := inj.Send(m); err != nil {
			t.Fatalf("blackholed send %d must report success, got %v", i, err)
		}
	}
	if got := inner.delivered(); got != 1 {
		t.Fatalf("inner deliveries = %d, want 1 (the pre-blackhole send)", got)
	}
	if st := inj.Stats(); st.SwallowedByBlackhole != 3 {
		t.Fatalf("SwallowedByBlackhole = %d, want 3", st.SwallowedByBlackhole)
	}

	// Recv blocks silently — the hang only deadlines can detect — until
	// the injector closes.
	recvDone := make(chan struct{})
	go func() {
		_, _ = inj.Recv()
		close(recvDone)
	}()
	select {
	case <-recvDone:
		t.Fatal("blackholed Recv returned; it must block")
	case <-time.After(50 * time.Millisecond):
	}
	if err := inj.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	select {
	case <-recvDone:
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed Recv did not unblock on Close")
	}
}

func TestMutateFrameAlwaysChangesOrBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frame, err := remote.AppendFrame(nil, &remote.Message{Kind: remote.MsgInvoke, ID: 5, Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		out := faults.MutateFrame(rng, frame)
		if len(out) > len(frame)+16 {
			t.Fatalf("mutation grew frame from %d to %d bytes (cap is +16)", len(frame), len(out))
		}
		// The decoder must survive every mutation; errors are fine,
		// panics are not (DecodeFrame panicking fails the test).
		_, _ = remote.DecodeFrame(out)
	}
	if faults.MutateFrame(rng, nil) == nil {
		t.Fatal("mutating an empty frame must still produce bytes")
	}
}
