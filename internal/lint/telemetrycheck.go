package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TelemetryCheck guards the observability subsystem's two contracts.
//
// First, the telemetry package itself must never read the wall clock:
// every instrument and the tracer take an injectable `func() time.Time`,
// which is what keeps fake-clock tests and deterministic replays exact.
// A direct time.Now / time.Since / time.Until inside a package whose
// import path ends in internal/telemetry is flagged.
//
// Second, repo-wide, every metric registered on a telemetry registry
// must be named by a constant lowercase_snake string: constant so the
// full metric inventory is greppable, lowercase_snake because that is
// the Prometheus exposition convention the /metrics endpoint serves.
// The first argument of Counter / Gauge / GaugeFunc / Histogram /
// SizeHistogram calls on a telemetry-package receiver must therefore be
// a string constant matching ^[a-z][a-z0-9_]*$.
var TelemetryCheck = &Analyzer{
	Name: "telemetrycheck",
	Doc:  "forbid wall-clock reads inside internal/telemetry and non-constant or non-snake_case metric names at registration sites",
	Run:  runTelemetryCheck,
}

// registerMethods are the Registry methods whose first argument is a
// metric name.
var registerMethods = map[string]bool{
	"Counter":       true,
	"Gauge":         true,
	"GaugeFunc":     true,
	"Histogram":     true,
	"SizeHistogram": true,
}

func runTelemetryCheck(pass *Pass) error {
	inTelemetry := strings.HasSuffix(pass.Pkg.Path(), "internal/telemetry")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if inTelemetry {
				checkTelemetryClock(pass, call)
			}
			checkMetricName(pass, call)
			return true
		})
	}
	return nil
}

// checkTelemetryClock flags direct wall-clock reads inside the telemetry
// package itself.
func checkTelemetryClock(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on time values are fine
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		pass.Reportf(call.Pos(),
			"call to time.%s in the telemetry hot path; use the injected clock (the `now func() time.Time` field)",
			fn.Name())
	}
}

// checkMetricName enforces constant lowercase_snake metric names on
// registry registration calls.
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !registerMethods[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return // only Registry methods register named metrics
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to %s must be a constant string so the metric inventory is greppable",
			fn.Name())
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeMetricName(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q must be lowercase_snake (^[a-z][a-z0-9_]*$) for Prometheus exposition",
			name)
	}
}

// snakeMetricName reports whether name matches ^[a-z][a-z0-9_]*$.
func snakeMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
		case i > 0 && (r == '_' || (r >= '0' && r <= '9')):
		default:
			return false
		}
	}
	return true
}
