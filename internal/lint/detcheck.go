package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetCheck guards AIDE's deterministic replay paths: the emulator,
// partitioner, policy, and trace modules must reproduce Figures 6-9
// bit-for-bit from a recorded trace, and the remote module's timing
// must be measurable with a fake clock.
//
// It forbids three nondeterminism sources:
//
//  1. wall-clock reads — time.Now / time.Since / time.Until; inject a
//     clock (a `func() time.Time` field defaulting to time.Now),
//  2. the process-global math/rand functions — use a seeded
//     *rand.Rand,
//  3. map iteration that feeds results — a `range` over a map that
//     appends to a slice declared outside the loop, unless the slice
//     is sorted afterwards in the same function.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "forbid wall-clock reads, global math/rand, and map-order-dependent results in deterministic replay paths",
	Run:  runDetCheck,
}

func runDetCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"call to time.%s in a deterministic path; inject a clock (func() time.Time field defaulting to time.Now) instead",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors for explicitly seeded generators.
		default:
			pass.Reportf(call.Pos(),
				"call to the process-global %s.%s; use a seeded *rand.Rand so replays reproduce",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.ObjectOf(id).(*types.Func)
	return fn
}

// checkMapRanges flags `for ... range m` over a map whose body appends
// to a slice declared outside the loop, with no later sort of that
// slice in the same function: the classic way map iteration order
// leaks into results.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, target := range outerAppendTargets(pass, rng) {
			if !sortedAfter(pass, body, rng, target) {
				pass.Reportf(rng.Pos(),
					"map iteration feeds %s in nondeterministic order; sort %s afterwards or iterate sorted keys",
					target.Name(), target.Name())
			}
		}
		return true
	})
}

// outerAppendTargets returns slice variables declared outside the range
// statement that its body appends to.
func outerAppendTargets(pass *Pass, rng *ast.RangeStmt) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		} else if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.ObjectOf(id).(*types.Var)
		if !ok || seen[v] {
			return true
		}
		// Declared inside the loop: order cannot escape one iteration.
		if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes the variable to a call that looks like a sort
// (sort.*, slices.Sort*, or any function whose name contains "sort").
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if x, ok := fun.X.(*ast.Ident); ok {
				name = x.Name + "." + name // sort.Strings, slices.SortFunc, ...
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.ObjectOf(id) == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
