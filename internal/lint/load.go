package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands the patterns with the go tool (run in dir) and
// type-checks every matched package from source, resolving imports from
// the build cache's export data. It needs no network and no
// pre-installed archives: `go list -export` compiles dependencies into
// the cache on demand.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var roots []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range roots {
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
