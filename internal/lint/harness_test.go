package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// The testdata harness follows the x/tools analysistest convention: a
// flagged line carries a comment
//
//	code() // want `regexp`
//
// and the test fails on any unexpected diagnostic or any expectation
// that does not fire. Clean packages carry no want comments at all, so
// a single stray finding fails them.

const wantMarker = "// want "

var wantPattern = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadTestdata loads and type-checks one package under testdata/src
// through the production loader.
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading testdata %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("testdata %s: loaded %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantPattern.FindAllStringSubmatch(c.Text[idx+len(wantMarker):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment without a `backquoted` pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runTestdata applies one analyzer to one testdata package and matches
// its diagnostics against the package's want comments.
func runTestdata(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadTestdata(t, name)
	wants := collectWants(t, pkg)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestLockCheck(t *testing.T) {
	runTestdata(t, LockCheck, "lock_bad")
	runTestdata(t, LockCheck, "lock_clean")
}

func TestDetCheck(t *testing.T) {
	runTestdata(t, DetCheck, "det_bad")
	runTestdata(t, DetCheck, "det_clean")
}

func TestRPCErr(t *testing.T) {
	runTestdata(t, RPCErr, "rpcerr_bad")
	runTestdata(t, RPCErr, "rpcerr_clean")
}

func TestGobWire(t *testing.T) {
	runTestdata(t, GobWire, "gobwire_bad")
	runTestdata(t, GobWire, "gobwire_clean")
}

func TestTelemetryCheck(t *testing.T) {
	runTestdata(t, TelemetryCheck, "telemetry_bad")
	runTestdata(t, TelemetryCheck, "telemetry_clean")
	// The stub telemetry package itself carries the no-wall-clock cases:
	// its import path ends in internal/telemetry, so rule one applies.
	runTestdata(t, TelemetryCheck, "internal/telemetry")
}

func TestGoroutineCheck(t *testing.T) {
	runTestdata(t, GoroutineCheck, "goroutine_bad")
	runTestdata(t, GoroutineCheck, "goroutine_clean")
}

func TestCtxCheck(t *testing.T) {
	runTestdata(t, CtxCheck, "ctx_bad")
	runTestdata(t, CtxCheck, "ctx_clean")
}

func TestAtomicCheck(t *testing.T) {
	runTestdata(t, AtomicCheck, "atomic_bad")
	runTestdata(t, AtomicCheck, "atomic_clean")
}

// TestAllowDirective pins the suppression contract: a directive covers
// its own line and the next, only for the named analyzer, and a
// directive without a reason is itself reported.
func TestAllowDirective(t *testing.T) {
	const src = `package p

func f() {
	//lint:allow rpcerr
	_ = 0
	//lint:allow detcheck trusted seed
	_ = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, malformed := collectSuppressions(fset, []*ast.File{f})
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed") {
		t.Fatalf("malformed = %v, want exactly one malformed-directive report", malformed)
	}
	for _, line := range []int{6, 7} {
		d := Diagnostic{Analyzer: "detcheck", Pos: token.Position{Filename: "p.go", Line: line}}
		if !sup.allows(d) {
			t.Errorf("line %d not suppressed by the directive on line 6", line)
		}
	}
	if sup.allows(Diagnostic{Analyzer: "rpcerr", Pos: token.Position{Filename: "p.go", Line: 7}}) {
		t.Error("a detcheck directive must not suppress rpcerr")
	}
	if sup.allows(Diagnostic{Analyzer: "detcheck", Pos: token.Position{Filename: "p.go", Line: 5}}) {
		t.Error("the reasonless directive on line 4 must not suppress anything")
	}
}

// TestForScoping pins which analyzers run where.
func TestForScoping(t *testing.T) {
	names := func(pkg string) []string {
		var out []string
		for _, a := range For(pkg) {
			out = append(out, a.Name)
		}
		return out
	}
	// The concurrency-lifecycle analyzers (goroutinecheck, ctxcheck,
	// atomiccheck) are unscoped: they run everywhere.
	cases := []struct {
		pkg  string
		want string
	}{
		{"aide/internal/remote", "lockcheck detcheck rpcerr gobwire telemetrycheck goroutinecheck ctxcheck atomiccheck"},
		{"aide/internal/vm", "lockcheck rpcerr gobwire telemetrycheck goroutinecheck ctxcheck atomiccheck"},
		{"aide/internal/emulator", "detcheck rpcerr gobwire telemetrycheck goroutinecheck ctxcheck atomiccheck"},
		{"aide/internal/apps", "rpcerr gobwire telemetrycheck goroutinecheck ctxcheck atomiccheck"},
		{"aide/internal/telemetry", "lockcheck detcheck rpcerr gobwire telemetrycheck goroutinecheck ctxcheck atomiccheck"},
	}
	for _, tc := range cases {
		if got := strings.Join(names(tc.pkg), " "); got != tc.want {
			t.Errorf("For(%s) = %q, want %q", tc.pkg, got, tc.want)
		}
	}
}
