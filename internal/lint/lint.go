// Package lint is AIDE's in-tree static-analysis suite: a small
// go/analysis-style framework plus the project's custom analyzers. It
// exists because AIDE's correctness rests on invariants the compiler
// cannot see — lock discipline around the VM and peer tables, trace
// determinism in the replay paths, transport-error propagation at the
// remote-invocation boundary (the paper's graceful degradation when the
// surrogate disappears), and the concurrency lifecycle of the
// platform's background machinery: goroutines that provably join,
// contexts that thread caller-to-callee, atomic fields that stay
// atomic.
//
// The framework is self-contained on the standard library's go/ast and
// go/types (no golang.org/x/tools dependency): packages are loaded
// offline from `go list -export` build-cache export data, see load.go.
// The cmd/aide-vet driver runs the suite standalone or as a `go vet
// -vettool`.
//
// A finding can be suppressed at a specific site with a comment on the
// flagged line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; suppressions without one are reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in reports and //lint:allow comments.
	Name string

	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string

	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow "

// A Suppression is one //lint:allow directive found in source, with
// its mandatory reason. The driver's suppression-debt report compares
// the full inventory against the checked-in lint.budget file.
type Suppression struct {
	Analyzer string
	Reason   string
	Pos      token.Position
}

// suppressions maps file -> line -> directives allowed on that line (a
// directive also covers the line directly beneath it, so it can sit
// above the flagged statement).
type suppressions map[string]map[int][]Suppression

func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				directive := strings.TrimSpace(AllowDirective)
				if c.Text != directive && !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, directive))
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: need \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]Suppression{}
					sup[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], Suppression{
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					Pos:      pos,
				})
			}
		}
	}
	return sup, malformed
}

func (s suppressions) allows(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range byLine[line] {
			if a.Analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// Suppressions inventories every well-formed //lint:allow directive in
// the package, sorted by position, for the driver's budget report.
func Suppressions(pkg *Package) []Suppression {
	sup, _ := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Suppression
	for _, byLine := range sup {
		for _, entries := range byLine {
			out = append(out, entries...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// A Timing records one analyzer's wall-clock cost over one package.
type Timing struct {
	Analyzer string
	Package  string
	Elapsed  time.Duration
}

// Run applies the analyzers to one loaded package and returns the
// surviving (non-suppressed) findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkg, analyzers)
	return diags, err
}

// RunTimed is Run plus a per-analyzer wall-clock timing breakdown for
// the driver's -timings report.
func RunTimed(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	sup, diags := collectSuppressions(pkg.Fset, pkg.Files)
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !sup.allows(d) {
				diags = append(diags, d)
			}
		}
		start := time.Now()
		err := a.Run(pass)
		timings = append(timings, Timing{Analyzer: a.Name, Package: pkg.Path, Elapsed: time.Since(start)})
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, timings, nil
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{
		LockCheck, DetCheck, RPCErr, GobWire, TelemetryCheck,
		GoroutineCheck, CtxCheck, AtomicCheck,
	}
}

// scopes lists, per analyzer, the package-path suffixes it is scoped to
// repo-wide. Analyzers absent from the map run everywhere.
var scopes = map[string][]string{
	// The monitor/partitioner and the remote module run under the VM's
	// method-dispatch hooks, concurrently with the peer's worker pool;
	// the telemetry instruments are read by scrapes concurrent with all
	// of them.
	LockCheck.Name: {
		"internal/remote", "internal/vm", "internal/monitor",
		"internal/telemetry",
	},
	// The deterministic replay paths: Figures 6-9 must reproduce
	// bit-for-bit from a recorded trace. The telemetry package rides
	// along because snapshots and exposition must be stable run to run.
	DetCheck.Name: {
		"internal/emulator", "internal/mincut", "internal/policy",
		"internal/trace", "internal/experiments", "internal/remote",
		"internal/telemetry",
	},
}

// For returns the analyzers that apply to the package path.
func For(pkgPath string) []*Analyzer {
	var out []*Analyzer
	for _, a := range All() {
		suffixes, scoped := scopes[a.Name]
		if !scoped {
			out = append(out, a)
			continue
		}
		for _, s := range suffixes {
			if strings.HasSuffix(pkgPath, s) {
				out = append(out, a)
				break
			}
		}
	}
	return out
}
