package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCheck bans mixed atomic/plain access to the same struct field.
// The sharded pending-call table and the telemetry counters lean on
// sync/atomic for their hot paths; a single plain load or store of a
// field that is elsewhere accessed atomically is a data race the race
// detector only catches when the interleaving happens to fire. The rule
// is absolute: once a field is touched through sync/atomic — either the
// function style (atomic.AddInt64(&s.n, 1)) or the Go 1.19 typed
// wrappers (atomic.Bool, atomic.Int64, …) — every access must be
// atomic.
//
// Concretely, within a package:
//
//   - a field passed by address to a sync/atomic function may appear
//     only as &x.f inside such calls; any other read or write is
//     flagged;
//   - a field of a sync/atomic wrapper type may appear only as the
//     receiver of its own methods (x.f.Load(), x.f.Store(v), …) or as
//     &x.f handed to a helper; assigning or copying the wrapper value
//     is flagged (it smuggles the word out from under the atomics).
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "a struct field accessed through sync/atomic anywhere must be accessed atomically everywhere; mixed atomic/plain access is a data race",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *Pass) error {
	atomicFields := map[*types.Var]bool{}      // fields under the atomic contract
	sanctioned := map[*ast.SelectorExpr]bool{} // legal appearances of those fields

	// Pass 1: collect the contract and the accesses that honour it.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				collectAtomicCall(pass, n, atomicFields, sanctioned)
			case *ast.UnaryExpr:
				// &x.f of a wrapper-typed field: taking the address to
				// hand the atomic to a helper keeps the contract.
				if n.Op == token.AND {
					if sel, ok := n.X.(*ast.SelectorExpr); ok {
						if v := fieldOf(pass, sel); v != nil && isAtomicWrapper(v.Type()) {
							sanctioned[sel] = true
						}
					}
				}
			case *ast.StructType:
				// Declaring a wrapper-typed field puts it under the
				// contract even before any method call is seen.
				for _, field := range n.Fields.List {
					if t := pass.Info.TypeOf(field.Type); t != nil && isAtomicWrapper(t) {
						for _, name := range field.Names {
							if v, ok := pass.Info.Defs[name].(*types.Var); ok {
								atomicFields[v] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2: every remaining appearance of a contract field is a race.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldOf(pass, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			if isAtomicWrapper(v.Type()) {
				pass.Reportf(sel.Pos(),
					"field %s (%s) copied or reassigned as a value; use its Load/Store/Add methods so every access stays atomic", v.Name(), typeString(v.Type()))
			} else {
				pass.Reportf(sel.Pos(),
					"field %s is accessed through sync/atomic elsewhere; this plain access races with those atomics", v.Name())
			}
			return true
		})
	}
	return nil
}

// collectAtomicCall inspects one call expression. A sync/atomic
// function call (atomic.AddInt64(&s.n, 1)) registers its &field
// arguments under the contract and sanctions them; a wrapper method
// call (s.flag.Load()) sanctions its receiver selection.
func collectAtomicCall(pass *Pass, call *ast.CallExpr, atomicFields map[*types.Var]bool, sanctioned map[*ast.SelectorExpr]bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Wrapper method: s.flag.Load() — sanction the field selection
		// serving as the receiver.
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if sel, ok := outer.X.(*ast.SelectorExpr); ok {
			if v := fieldOf(pass, sel); v != nil {
				atomicFields[v] = true
				sanctioned[sel] = true
			}
		}
		return
	}
	// Function style: register every &x.f argument.
	for _, arg := range call.Args {
		u, ok := arg.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		sel, ok := u.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if v := fieldOf(pass, sel); v != nil {
			atomicFields[v] = true
			sanctioned[sel] = true
		}
	}
}

// fieldOf resolves a selector to the struct field it selects, or nil if
// it is not a field selection (package qualifier, method value, …).
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isAtomicWrapper reports whether t is one of the Go 1.19 typed
// atomics (atomic.Bool, atomic.Int64, atomic.Value, …).
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// typeString renders a type with its package qualifier shortened
// (sync/atomic.Bool → atomic.Bool) for readable diagnostics.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if i := strings.LastIndex(p.Path(), "/"); i >= 0 {
			return p.Path()[i+1:]
		}
		return p.Path()
	})
}
