package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseBudget(t *testing.T) {
	entries, err := ParseBudget([]byte(`
# comment
telemetrycheck 1 forwards constant names
goroutinecheck 2 bench scaffolding
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(entries))
	}
	if entries[0].Analyzer != "telemetrycheck" || entries[0].Max != 1 || entries[0].Rationale != "forwards constant names" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Max != 2 {
		t.Errorf("entry 1 max = %d, want 2", entries[1].Max)
	}
}

func TestParseBudgetRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"telemetrycheck 1",          // no rationale
		"telemetrycheck one reason", // non-numeric max
		"telemetrycheck -1 reason",  // negative max
	} {
		if _, err := ParseBudget([]byte(src)); err == nil {
			t.Errorf("ParseBudget(%q) accepted a malformed line", src)
		}
	}
}

func site(analyzer, file string, line int) Suppression {
	return Suppression{Analyzer: analyzer, Reason: "r", Pos: token.Position{Filename: file, Line: line}}
}

func TestCheckBudget(t *testing.T) {
	budget := []BudgetEntry{{Analyzer: "goroutinecheck", Max: 1, Rationale: "x"}}

	// Within budget: no diagnostics.
	if diags := CheckBudget(budget, []Suppression{site("goroutinecheck", "a.go", 1)}); len(diags) != 0 {
		t.Errorf("within budget: got %v", diags)
	}

	// Over budget: one diagnostic per excess site.
	diags := CheckBudget(budget, []Suppression{
		site("goroutinecheck", "a.go", 1),
		site("goroutinecheck", "b.go", 2),
	})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "budget allows 1") {
		t.Errorf("over budget: got %v", diags)
	}

	// Unbudgeted analyzer: every site reported.
	diags = CheckBudget(budget, []Suppression{site("ctxcheck", "c.go", 3)})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no lint.budget entry") {
		t.Errorf("unbudgeted: got %v", diags)
	}
}

// TestSuppressionsInventory pins that the inventory carries reasons and
// positions — the budget report depends on both.
func TestSuppressionsInventory(t *testing.T) {
	pkg := loadTestdata(t, "goroutine_clean")
	sites := Suppressions(pkg)
	if len(sites) != 1 {
		t.Fatalf("found %d suppressions in goroutine_clean, want 1", len(sites))
	}
	s := sites[0]
	if s.Analyzer != "goroutinecheck" {
		t.Errorf("analyzer = %q", s.Analyzer)
	}
	if !strings.Contains(s.Reason, "exercise suppression") {
		t.Errorf("reason = %q, want the directive's rationale text", s.Reason)
	}
	if s.Pos.Line == 0 || !strings.HasSuffix(s.Pos.Filename, "goroutine.go") {
		t.Errorf("position = %v", s.Pos)
	}
}
