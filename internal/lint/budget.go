package lint

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The suppression budget makes //lint:allow debt a reviewed, checked-in
// quantity instead of an unbounded escape hatch. The repo root carries a
// lint.budget file listing, per analyzer, the maximum number of
// suppressions tolerated and why those sites are legitimate:
//
//	# analyzer  max  rationale
//	goroutinecheck 1 rpcbench raw-echo loop is torn down with its connection
//
// The driver fails the run when the live suppression inventory exceeds
// an analyzer's budget, or when a suppression names an analyzer with no
// budget line at all. Shrinking debt never needs a budget change;
// growing it does, and the diff shows up in review.

// A BudgetEntry is one line of the lint.budget file.
type BudgetEntry struct {
	Analyzer  string
	Max       int
	Rationale string
}

// ParseBudget parses the lint.budget format: one entry per line,
// `<analyzer> <max> <rationale…>`; blank lines and #-comments ignored.
func ParseBudget(data []byte) ([]BudgetEntry, error) {
	var entries []BudgetEntry
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("lint.budget:%d: need \"<analyzer> <max> <rationale>\", got %q", lineNo, line)
		}
		max, err := strconv.Atoi(fields[1])
		if err != nil || max < 0 {
			return nil, fmt.Errorf("lint.budget:%d: max must be a non-negative integer, got %q", lineNo, fields[1])
		}
		entries = append(entries, BudgetEntry{
			Analyzer:  fields[0],
			Max:       max,
			Rationale: strings.Join(fields[2:], " "),
		})
	}
	return entries, sc.Err()
}

// CheckBudget compares the live suppression inventory against the
// budget and returns one diagnostic per violation: an analyzer over its
// budget, or a suppression for an analyzer with no budget line.
func CheckBudget(entries []BudgetEntry, sites []Suppression) []Diagnostic {
	budget := map[string]int{}
	for _, e := range entries {
		budget[e.Analyzer] += e.Max
	}
	counts := map[string][]Suppression{}
	for _, s := range sites {
		counts[s.Analyzer] = append(counts[s.Analyzer], s)
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var diags []Diagnostic
	for _, name := range names {
		used := counts[name]
		max, budgeted := budget[name]
		if !budgeted {
			for _, s := range used {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      s.Pos,
					Message:  fmt.Sprintf("suppression of %s has no lint.budget entry; add one with a rationale or fix the finding", name),
				})
			}
			continue
		}
		if len(used) > max {
			// Anchor the report on the excess sites so the fix target is
			// concrete.
			for _, s := range used[max:] {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      s.Pos,
					Message:  fmt.Sprintf("suppression debt for %s is %d, budget allows %d; fix a finding or grow the budget in review", name, len(used), max),
				})
			}
		}
	}
	return diags
}
