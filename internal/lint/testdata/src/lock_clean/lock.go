// Package lock_clean holds the mutex shapes lockcheck must accept:
// lock/defer-unlock pairing, unexported caller-holds-mu helpers, the
// temporary-release helper whose first mutex operation is an Unlock,
// and goroutines that do their own locking.
package lock_clean

import "sync"

type Table struct {
	mu    sync.Mutex
	count int
}

func (t *Table) Add() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addLocked()
}

// addLocked requires mu held by the caller (the *Locked convention).
func (t *Table) addLocked() { t.count++ }

func (t *Table) Drain() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	return t.count
}

// flushLocked temporarily releases mu for slow work and re-acquires it
// before returning: not an acquisition, so Drain's call is no deadlock.
func (t *Table) flushLocked() {
	t.mu.Unlock()
	// slow work outside the lock
	t.mu.Lock()
	t.count = 0
}

func (t *Table) Spawn() {
	go func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.count++
	}()
}
