// Package remote is a test stand-in for the real remote-invocation
// module: its import path ends in internal/remote, so rpcerr treats
// calls into it as remote-module calls.
package remote

type Peer struct{}

func (p *Peer) Ping() error  { return nil }
func (p *Peer) Close() error { return nil }

func Dial(addr string) (*Peer, error) { return &Peer{}, nil }
