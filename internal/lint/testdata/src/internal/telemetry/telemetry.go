// Package telemetry is a test stand-in for the real metrics package:
// its import path ends in internal/telemetry, so telemetrycheck applies
// both rules to it — the no-wall-clock rule to this file's own bodies,
// and the metric-name rule to calls on its Registry from other testdata
// packages.
package telemetry

import "time"

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter           { return nil }
func (r *Registry) Gauge(name, help string) *Gauge               { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {}
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	return nil
}
func (r *Registry) SizeHistogram(name, help string, bounds []int64) *Histogram {
	return nil
}

// Helper with the same name as a registration method but no receiver:
// package-level functions never register named metrics, so the name rule
// must not fire on calls to it.
func GaugeFunc(name string) {}

func stampNow() time.Time {
	return time.Now() // want `call to time\.Now in the telemetry hot path`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since in the telemetry hot path`
}

func remaining(t time.Time) time.Duration {
	return time.Until(t) // want `call to time\.Until in the telemetry hot path`
}

// injected clocks are the sanctioned pattern: taking time.Now as a value
// (not calling it) must stay clean.
var defaultClock func() time.Time = time.Now

// methods on time values are not wall-clock reads.
func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
