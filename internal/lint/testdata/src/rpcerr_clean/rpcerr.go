// Package rpcerr_clean handles remote-module errors the ways rpcerr
// must accept: checked, propagated, or explicitly suppressed with a
// reasoned //lint:allow directive.
package rpcerr_clean

import (
	"context"
	"errors"
	"fmt"

	remote "aide/internal/lint/testdata/src/internal/remote"
)

func Checked(p *remote.Peer) error {
	if err := p.Ping(); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	return nil
}

func Propagated(addr string) (*remote.Peer, error) {
	return remote.Dial(addr)
}

func Folded(p *remote.Peer) (err error) {
	err = p.Ping()
	if cerr := p.Close(); err == nil {
		err = cerr
	}
	return err
}

func Suppressed(p *remote.Peer) {
	//lint:allow rpcerr best-effort notification on teardown
	_ = p.Close()
}

// A compliant retry wrapper: ctx.Err() aborts the loop before every
// backoff, so cancellation propagates unretried.
func PingRetry(ctx context.Context, p *remote.Peer) error {
	var err error
	for i := 0; i < 3; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = p.Ping(); err == nil {
			return nil
		}
	}
	return err
}

// Matching on the sentinel error is equally acceptable.
func retryUntilCanceled(ctx context.Context, p *remote.Peer) error {
	for {
		err := p.Ping()
		if err == nil || errors.Is(err, context.Canceled) {
			return err
		}
	}
}

// Select on ctx.Done() counts too.
func retryWithDone(ctx context.Context, p *remote.Peer) error {
	for {
		if err := p.Ping(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
}

// A loopless function is configuration, not a retry wrapper — the rule
// must not fire on it.
func WithRetryBudget(n int) int { return n }
