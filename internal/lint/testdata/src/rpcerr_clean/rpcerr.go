// Package rpcerr_clean handles remote-module errors the ways rpcerr
// must accept: checked, propagated, or explicitly suppressed with a
// reasoned //lint:allow directive.
package rpcerr_clean

import (
	"fmt"

	remote "aide/internal/lint/testdata/src/internal/remote"
)

func Checked(p *remote.Peer) error {
	if err := p.Ping(); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	return nil
}

func Propagated(addr string) (*remote.Peer, error) {
	return remote.Dial(addr)
}

func Folded(p *remote.Peer) (err error) {
	err = p.Ping()
	if cerr := p.Close(); err == nil {
		err = cerr
	}
	return err
}

func Suppressed(p *remote.Peer) {
	//lint:allow rpcerr best-effort notification on teardown
	_ = p.Close()
}
