// Package atomic_bad exercises atomiccheck's findings: a field updated
// through sync/atomic but also read plainly, and a typed-atomic field
// copied out as a value.
package atomic_bad

import "sync/atomic"

type Counters struct {
	hits int64
	flag atomic.Bool
}

// Inc puts hits under the atomic contract.
func (c *Counters) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Racy reads hits without the atomics.
func (c *Counters) Racy() int64 {
	return c.hits // want `plain access races`
}

// Reset writes hits without the atomics.
func (c *Counters) Reset() {
	c.hits = 0 // want `plain access races`
}

// Set is the legal use of the wrapper.
func (c *Counters) Set(v bool) {
	c.flag.Store(v)
}

// Copy smuggles the word out from under the atomics.
func (c *Counters) Copy() atomic.Bool {
	return c.flag // want `copied or reassigned`
}
