// Package gobwire_bad sends types through gob that violate every
// gobwire rule: unencodable fields, silently-dropped unexported fields,
// a reachable struct with no exported fields, and an interface field
// with no gob.Register anywhere in the package.
package gobwire_bad

import (
	"bytes"
	"encoding/gob"
)

type Payload struct {
	Name   string
	Fn     func()     // want `field Fn of wire type gobwire_bad\.Payload is a func`
	Ch     chan int   // want `field Ch of wire type gobwire_bad\.Payload is a channel`
	Z      complex128 // want `field Z of wire type gobwire_bad\.Payload has type complex128`
	hidden int        // want `unexported field hidden of wire type gobwire_bad\.Payload is silently dropped`
	Data   Inner
	Meta   meta
}

//lint:wire Payload
const payloadWireFields = 3 // want `wire type gobwire_bad\.Payload has 7 fields but the codec pins 3`

//lint:wire Missing
const missingWireFields = 1 // want `lint:wire pins unknown type Missing`

//lint:wire NotAStruct
const notAStructWireFields = 1 // want `lint:wire target NotAStruct is not a struct`

// NotAStruct exercises the non-struct pin diagnostic.
type NotAStruct int

type Inner struct {
	Val any // want `interface-typed field Val of wire type gobwire_bad\.Inner crosses the wire without any gob\.Register`
}

type meta struct {
	n int // want `unexported field n of wire type gobwire_bad\.meta is silently dropped`
}

func Send(p Payload) error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(p) // want `wire type gobwire_bad\.meta has no exported fields`
}
