// Package goroutine_bad exercises goroutinecheck's findings: a spawned
// body with no join/shutdown shape, a same-package method spawn whose
// body cannot stop, and a spawn of a function value the analyzer cannot
// see into.
package goroutine_bad

type Server struct {
	busy bool
}

// Leak spawns a loop that nothing can stop.
func Leak() {
	go func() { // want `no provable join/shutdown path`
		for {
		}
	}()
}

// loop runs forever with no join shape; spawning it is the finding.
func (s *Server) loop() {
	for {
		s.busy = !s.busy
	}
}

// Start resolves the method body within the package and flags it.
func (s *Server) Start() {
	go s.loop() // want `no provable join/shutdown path`
}

// Opaque spawns a function value: the join path is unprovable at the
// launch site.
func Opaque(f func()) {
	go f() // want `cannot see`
}
