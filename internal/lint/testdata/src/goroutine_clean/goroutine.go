// Package goroutine_clean carries one goroutine per accepted
// join/shutdown shape — WaitGroup Done, shutdown-channel select,
// channel range, completion send — plus a suppressed launch site. No
// expectations: any finding fails the test.
package goroutine_clean

import "sync"

type Worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	jobs chan int
	done int
}

// StartJoined joins via the WaitGroup.
func (w *Worker) StartJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for range w.jobs {
			w.done++
		}
	}()
}

// StartSelect stops when the shutdown channel closes.
func (w *Worker) StartSelect() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case j := <-w.jobs:
				w.done += j
			}
		}
	}()
}

// StartRange drains until the owner closes the jobs channel.
func (w *Worker) StartRange() {
	go w.drain()
}

func (w *Worker) drain() {
	for j := range w.jobs {
		w.done += j
	}
}

// StartBounded performs one bounded operation and signals completion.
func StartBounded(errc chan error, f func() error) {
	go func() {
		errc <- f()
	}()
}

// StartSuppressed exercises the suppression path.
func StartSuppressed() {
	//lint:allow goroutinecheck testdata: pinned as acceptable to exercise suppression
	go func() {
		for {
		}
	}()
}
