// Package telemetry_bad registers metrics in every way telemetrycheck
// forbids: non-constant names and names that are not lowercase_snake.
package telemetry_bad

import (
	"time"

	telemetry "aide/internal/lint/testdata/src/internal/telemetry"
)

const okName = "aide_ok_total"

var runtimeName = "aide_runtime_total"

func register(reg *telemetry.Registry, suffix string) {
	reg.Counter(okName, "a constant snake_case name is fine")
	reg.Counter(runtimeName, "h")                             // want `metric name passed to Counter must be a constant string`
	reg.Counter("aide_"+suffix, "h")                          // want `metric name passed to Counter must be a constant string`
	reg.Gauge("UpperCase", "h")                               // want `metric name "UpperCase" must be lowercase_snake`
	reg.Gauge("aide-dashed-name", "h")                        // want `metric name "aide-dashed-name" must be lowercase_snake`
	reg.GaugeFunc("9starts_with_digit", "h", nil)             // want `metric name "9starts_with_digit" must be lowercase_snake`
	reg.Histogram("", "h", []time.Duration{time.Millisecond}) // want `metric name "" must be lowercase_snake`
	reg.SizeHistogram("aide.dotted", "h", []int64{1})         // want `metric name "aide\.dotted" must be lowercase_snake`
}
