// Package lock_bad exercises both lockcheck rules: an exported method
// touching a guarded field without the mutex, and a same-receiver call
// that re-acquires a held mutex.
package lock_bad

import "sync"

type Table struct {
	mu    sync.Mutex
	count int
}

// Add writes count under mu, which marks count as guarded.
func (t *Table) Add() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
}

func (t *Table) Peek() int {
	return t.count // want `Table.Peek accesses Table.count without holding mu`
}

func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Add() // want `calls Table.Add while holding mu, which Add re-acquires \(deadlock\)`
}

// Embedded holds its mutex anonymously; recv.Lock() must still count.
type Embedded struct {
	sync.Mutex
	n int
}

func (e *Embedded) Inc() {
	e.Lock()
	e.n++
	e.Unlock()
}

func (e *Embedded) Get() int {
	return e.n // want `Embedded.Get accesses Embedded.n without holding Mutex`
}
