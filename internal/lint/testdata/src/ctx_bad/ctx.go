// Package ctx_bad exercises ctxcheck's findings: Background/TODO
// minted mid-library, a context stored in a struct, a ctx parameter
// that is not first, and a ctx parameter that is never used.
package ctx_bad

import "context"

// Fetch mints a Background outside the blessed wrapper shape.
func Fetch() error {
	ctx := context.Background() // want `context.Background mid-library`
	<-ctx.Done()
	return nil
}

// Todo is no better.
func Todo() {
	_ = context.TODO() // want `context.TODO mid-library`
}

// Session stores a call-scoped value as state.
type Session struct {
	ctx context.Context // want `stored in a struct field`
}

// Query hides the context mid-signature.
func Query(name string, ctx context.Context) error { // want `must be the first parameter`
	<-ctx.Done()
	_ = name
	return nil
}

// Ignore advertises cancellation it does not deliver.
func Ignore(ctx context.Context) error { // want `never uses it`
	return nil
}
