// Package gobwire_clean round-trips a wire type gobwire must accept:
// all-exported encodable fields, and an interface field whose concrete
// types the package registers with gob.
package gobwire_clean

import (
	"bytes"
	"encoding/gob"
)

type Payload struct {
	Name string
	Vals []int64
	Tags map[string]string
	Body any
}

// A correct //lint:wire pin: Payload has exactly four fields.
//
//lint:wire Payload
const payloadWireFields = 4

func init() {
	gob.Register(int64(0))
	gob.Register("")
}

func Roundtrip(p Payload) (Payload, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return Payload{}, err
	}
	var out Payload
	err := gob.NewDecoder(&buf).Decode(&out)
	return out, err
}
