// Package det_clean holds the deterministic replacements detcheck must
// accept: an injected clock field, seeded *rand.Rand generators, and
// map iteration whose output is sorted afterwards.
package det_clean

import (
	"math/rand"
	"sort"
	"time"
)

type Clocked struct {
	now func() time.Time
}

// New stores time.Now as a value, not a call: allowed.
func New() *Clocked { return &Clocked{now: time.Now} }

func (c *Clocked) Stamp() time.Time { return c.now() }

// Seeded uses the explicit constructors, which are allowed.
func Seeded() *rand.Rand { return rand.New(rand.NewSource(1)) }

// Pick calls a method on a seeded generator, not the global one.
func Pick(r *rand.Rand, n int) int { return r.Intn(n) }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Pairs(m map[string]int) []string {
	// Appending to a slice declared inside the loop cannot leak order.
	for range m {
		var local []string
		local = append(local, "x")
		_ = local
	}
	return nil
}
