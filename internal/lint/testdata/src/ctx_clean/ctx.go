// Package ctx_clean carries the accepted context shapes: the
// single-statement ctx-less compatibility wrapper (both return and
// expression forms), ctx-first threaded signatures, and a suppressed
// Background. No expectations: any finding fails the test.
package ctx_clean

import "context"

// Fetch is the blessed wrapper: one statement forwarding to the
// *Context variant.
func Fetch() error {
	return FetchContext(context.Background())
}

// FetchContext threads the caller's context.
func FetchContext(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

// Run is the expression-statement form of the wrapper.
func Run() {
	RunContext(context.Background())
}

// RunContext consults the context it accepts.
func RunContext(ctx context.Context) {
	_ = ctx.Err()
}

// Query keeps ctx first and passes it on.
func Query(ctx context.Context, name string) error {
	_ = name
	return FetchContext(ctx)
}

// Pinned exercises the suppression path.
func Pinned() {
	//lint:allow ctxcheck testdata: pinned as acceptable to exercise suppression
	_ = context.Background()
}
