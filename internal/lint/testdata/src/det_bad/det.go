// Package det_bad holds every nondeterminism source detcheck forbids in
// replay paths: wall-clock reads, the process-global math/rand, and map
// iteration order leaking into a result slice.
package det_bad

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `call to time\.Now in a deterministic path`
}

func Age(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since in a deterministic path`
}

func Pick(n int) int {
	return rand.Intn(n) // want `process-global rand\.Intn`
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration feeds out in nondeterministic order`
		out = append(out, k)
	}
	return out
}
