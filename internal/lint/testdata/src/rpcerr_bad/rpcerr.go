// Package rpcerr_bad discards remote-module errors in every way rpcerr
// forbids, and panics in library code.
package rpcerr_bad

import (
	"context"

	remote "aide/internal/lint/testdata/src/internal/remote"
)

func Drop(p *remote.Peer) {
	p.Ping() // want `call to Ping discards its error`
}

func Blank(p *remote.Peer) {
	_ = p.Close() // want `error result of Close assigned to _`
}

func Deferred(p *remote.Peer) {
	defer p.Close() // want `deferred call to Close discards its error`
}

func Spawned(p *remote.Peer) {
	go p.Ping() // want `spawned call to Ping discards its error`
}

func Pair() {
	p, _ := remote.Dial("surrogate:7707") // want `error result of Dial assigned to _`
	_ = p
}

func Boom() {
	panic("unreachable") // want `panic in library code`
}

// A retry loop that ignores its context holds a canceled caller hostage
// to backoff sleeps.
func PingRetry(ctx context.Context, p *remote.Peer) error { // want `retry wrapper PingRetry never consults its context`
	var err error
	for i := 0; i < 3; i++ {
		if err = p.Ping(); err == nil {
			return nil
		}
	}
	return err
}

// The name alone is enough: a retrying helper without even a context
// parameter cannot propagate cancellation at all.
func retryForever(p *remote.Peer) { // want `retry wrapper retryForever never consults its context`
	for {
		if err := p.Ping(); err == nil {
			return
		}
	}
}
