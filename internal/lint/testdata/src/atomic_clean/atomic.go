// Package atomic_clean carries the accepted atomic-access shapes:
// function-style atomics used consistently, wrapper methods, a plain
// field that never mixes with atomics, passing a wrapper by address,
// and a suppressed plain read. No expectations: any finding fails the
// test.
package atomic_clean

import "sync/atomic"

type Counters struct {
	hits  int64
	total int64
	flag  atomic.Bool
}

// Inc and Load keep hits consistently atomic.
func (c *Counters) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counters) Load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Bump touches total, which no atomic ever touches: plain is fine.
func (c *Counters) Bump() {
	c.total++
}

// Set and Get are the wrapper's own methods.
func (c *Counters) Set(v bool) {
	c.flag.Store(v)
}

func (c *Counters) Get() bool {
	return c.flag.Load()
}

// reset takes the wrapper by address: the contract holds.
func reset(b *atomic.Bool) { b.Store(false) }

func (c *Counters) ResetFlag() {
	reset(&c.flag)
}

// Snapshot exercises the suppression path.
func (c *Counters) Snapshot() int64 {
	//lint:allow atomiccheck testdata: pinned as acceptable to exercise suppression
	return c.hits
}
