// Package telemetry_clean registers metrics the sanctioned way: constant
// lowercase_snake names, clocks injected as values. No diagnostics.
package telemetry_clean

import (
	"time"

	telemetry "aide/internal/lint/testdata/src/internal/telemetry"
)

const (
	metricCalls   = "aide_calls_total"
	metricLatency = "aide_call_latency_seconds"
	metricLive    = "aide_live_bytes"
	metricBatch   = "aide_batch_size"
)

func register(reg *telemetry.Registry) {
	reg.Counter(metricCalls, "h")
	reg.Gauge(metricLive, "h")
	reg.GaugeFunc("aide_live_objects", "h", func() int64 { return 0 })
	reg.Histogram(metricLatency, "h", []time.Duration{time.Millisecond})
	reg.SizeHistogram(metricBatch, "h", []int64{1, 8})
}

// Outside internal/telemetry, wall-clock reads are this analyzer's
// business only inside the telemetry package; this must stay clean.
func stamp() time.Time { return time.Now() }

// Same-named package-level function: no receiver, no name rule.
func use() { telemetry.GaugeFunc("Whatever Goes Here") }
