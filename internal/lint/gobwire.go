package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// GobWire audits every type that crosses the wire codec. AIDE frames
// its RPC envelope and its recorded traces with encoding/gob; a field
// gob cannot encode fails at runtime on the first real deployment, and
// an unexported field is silently dropped — the object arrives at the
// surrogate missing state.
//
// For each type passed to (*gob.Encoder).Encode or
// (*gob.Decoder).Decode it walks the reachable type graph and reports:
//
//   - func-, chan-, complex- and unsafe.Pointer-typed fields (gob
//     cannot encode them),
//   - unexported fields (silently dropped),
//   - reachable structs with fields but none exported (encode fails at
//     runtime),
//   - interface-typed fields when the package performs no gob.Register
//     (the concrete types could never decode).
//
// It additionally enforces the hand-rolled binary codec's contract via
// field-count pins: a constant declared as
//
//	//lint:wire <Type>            (or <import/path>.<Type>)
//	const somethingWireFields = N
//
// asserts that the named struct has exactly N fields. The binary codec
// (internal/remote/codec.go) encodes every field explicitly, so adding a
// field without teaching the codec about it would silently drop it on
// the wire; the pin turns that into a vet failure until the codec and
// the pin are updated together. Pinned types are also walked with the
// encodability rules above.
var GobWire = &Analyzer{
	Name: "gobwire",
	Doc:  "types crossing the gob wire codec must be registered and hold only encodable exported fields",
	Run:  runGobWire,
}

func runGobWire(pass *Pass) error {
	var roots []gobRoot
	registers := 0
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			switch fn.Name() {
			case "Register", "RegisterName":
				registers++
			case "Encode", "Decode":
				if len(call.Args) == 1 {
					if t := pass.Info.TypeOf(call.Args[0]); t != nil {
						roots = append(roots, gobRoot{typ: t, pos: call.Pos()})
					}
				}
			}
			return true
		})
	}

	w := &gobWalker{
		pass:       pass,
		registered: registers > 0,
		seen:       map[types.Type]bool{},
		reported:   map[string]bool{},
	}
	for _, r := range roots {
		w.rootPos = r.pos
		w.walk(r.typ)
	}

	for _, pin := range collectWirePins(pass) {
		t := resolveWireRef(pass, pin.ref)
		if t == nil {
			pass.Reportf(pin.pos, "lint:wire pins unknown type %s", pin.ref)
			continue
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(pin.pos, "lint:wire target %s is not a struct", pin.ref)
			continue
		}
		if int64(st.NumFields()) != pin.count {
			pass.Reportf(pin.pos,
				"wire type %s has %d fields but the codec pins %d; update the binary codec and the pin together",
				typeName(t), st.NumFields(), pin.count)
		}
		w.rootPos = pin.pos
		w.walk(t)
	}
	return nil
}

// WireDirective marks a constant as a binary-codec field-count pin.
const WireDirective = "//lint:wire "

// wirePin is one parsed //lint:wire directive: the referenced type and
// the field count the annotated constant pins it to.
type wirePin struct {
	ref   string
	count int64
	pos   token.Pos
}

func collectWirePins(pass *Pass) []wirePin {
	var pins []wirePin
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if doc == nil {
					continue
				}
				ref := ""
				for _, c := range doc.List {
					if strings.HasPrefix(c.Text, WireDirective) {
						ref = strings.TrimSpace(strings.TrimPrefix(c.Text, WireDirective))
					}
				}
				if ref == "" || len(vs.Names) != 1 {
					continue
				}
				cobj, ok := pass.Info.Defs[vs.Names[0]].(*types.Const)
				if !ok {
					continue
				}
				n, exact := constant.Int64Val(cobj.Val())
				if !exact {
					continue
				}
				pins = append(pins, wirePin{ref: ref, count: n, pos: vs.Pos()})
			}
		}
	}
	return pins
}

// resolveWireRef resolves a //lint:wire type reference: a bare name in
// the package's own scope, or import/path.Name in an imported package.
func resolveWireRef(pass *Pass, ref string) types.Type {
	scope := pass.Pkg.Scope()
	name := ref
	if i := strings.LastIndex(ref, "."); i >= 0 {
		path, n := ref[:i], ref[i+1:]
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == path {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil
		}
		name = n
	}
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

type gobRoot struct {
	typ types.Type
	pos token.Pos
}

type gobWalker struct {
	pass       *Pass
	registered bool
	rootPos    token.Pos
	seen       map[types.Type]bool
	reported   map[string]bool
}

// report emits once per (type, field) pair, anchored at the field's
// declaration when it lives in the analyzed package, else at the
// Encode/Decode call that reaches it.
func (w *gobWalker) report(f *types.Var, format string, args ...any) {
	key := fmt.Sprintf("%v:%s", f.Pos(), format)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	pos := w.rootPos
	if f.Pkg() == w.pass.Pkg {
		pos = f.Pos()
	}
	w.pass.Reportf(pos, format, args...)
}

func (w *gobWalker) walk(t types.Type) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.walk(u.Elem())
	case *types.Slice:
		w.walk(u.Elem())
	case *types.Array:
		w.walk(u.Elem())
	case *types.Map:
		w.walk(u.Key())
		w.walk(u.Elem())
	case *types.Struct:
		w.walkStruct(t, u)
	}
}

func (w *gobWalker) walkStruct(t types.Type, st *types.Struct) {
	name := typeName(t)
	exported := 0
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			w.report(f, "unexported field %s of wire type %s is silently dropped by gob", f.Name(), name)
			continue
		}
		exported++
		w.checkField(name, f)
	}
	if exported == 0 && st.NumFields() > 0 {
		w.pass.Reportf(w.rootPos, "wire type %s has no exported fields; gob encoding fails at runtime", name)
	}
}

func (w *gobWalker) checkField(owner string, f *types.Var) {
	switch u := f.Type().Underlying().(type) {
	case *types.Signature:
		w.report(f, "field %s of wire type %s is a func; gob cannot encode it", f.Name(), owner)
	case *types.Chan:
		w.report(f, "field %s of wire type %s is a channel; gob cannot encode it", f.Name(), owner)
	case *types.Basic:
		switch u.Kind() {
		case types.Complex64, types.Complex128, types.UnsafePointer:
			w.report(f, "field %s of wire type %s has type %s; gob cannot encode it", f.Name(), owner, u)
		}
	case *types.Interface:
		if !w.registered {
			w.report(f,
				"interface-typed field %s of wire type %s crosses the wire without any gob.Register in this package; concrete values cannot decode",
				f.Name(), owner)
		}
	default:
		w.walk(f.Type())
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
