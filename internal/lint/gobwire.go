package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GobWire audits every type that crosses the wire codec. AIDE frames
// its RPC envelope and its recorded traces with encoding/gob; a field
// gob cannot encode fails at runtime on the first real deployment, and
// an unexported field is silently dropped — the object arrives at the
// surrogate missing state.
//
// For each type passed to (*gob.Encoder).Encode or
// (*gob.Decoder).Decode it walks the reachable type graph and reports:
//
//   - func-, chan-, complex- and unsafe.Pointer-typed fields (gob
//     cannot encode them),
//   - unexported fields (silently dropped),
//   - reachable structs with fields but none exported (encode fails at
//     runtime),
//   - interface-typed fields when the package performs no gob.Register
//     (the concrete types could never decode).
var GobWire = &Analyzer{
	Name: "gobwire",
	Doc:  "types crossing the gob wire codec must be registered and hold only encodable exported fields",
	Run:  runGobWire,
}

func runGobWire(pass *Pass) error {
	var roots []gobRoot
	registers := 0
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			switch fn.Name() {
			case "Register", "RegisterName":
				registers++
			case "Encode", "Decode":
				if len(call.Args) == 1 {
					if t := pass.Info.TypeOf(call.Args[0]); t != nil {
						roots = append(roots, gobRoot{typ: t, pos: call.Pos()})
					}
				}
			}
			return true
		})
	}

	w := &gobWalker{
		pass:       pass,
		registered: registers > 0,
		seen:       map[types.Type]bool{},
		reported:   map[string]bool{},
	}
	for _, r := range roots {
		w.rootPos = r.pos
		w.walk(r.typ)
	}
	return nil
}

type gobRoot struct {
	typ types.Type
	pos token.Pos
}

type gobWalker struct {
	pass       *Pass
	registered bool
	rootPos    token.Pos
	seen       map[types.Type]bool
	reported   map[string]bool
}

// report emits once per (type, field) pair, anchored at the field's
// declaration when it lives in the analyzed package, else at the
// Encode/Decode call that reaches it.
func (w *gobWalker) report(f *types.Var, format string, args ...any) {
	key := fmt.Sprintf("%v:%s", f.Pos(), format)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	pos := w.rootPos
	if f.Pkg() == w.pass.Pkg {
		pos = f.Pos()
	}
	w.pass.Reportf(pos, format, args...)
}

func (w *gobWalker) walk(t types.Type) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.walk(u.Elem())
	case *types.Slice:
		w.walk(u.Elem())
	case *types.Array:
		w.walk(u.Elem())
	case *types.Map:
		w.walk(u.Key())
		w.walk(u.Elem())
	case *types.Struct:
		w.walkStruct(t, u)
	}
}

func (w *gobWalker) walkStruct(t types.Type, st *types.Struct) {
	name := typeName(t)
	exported := 0
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			w.report(f, "unexported field %s of wire type %s is silently dropped by gob", f.Name(), name)
			continue
		}
		exported++
		w.checkField(name, f)
	}
	if exported == 0 && st.NumFields() > 0 {
		w.pass.Reportf(w.rootPos, "wire type %s has no exported fields; gob encoding fails at runtime", name)
	}
}

func (w *gobWalker) checkField(owner string, f *types.Var) {
	switch u := f.Type().Underlying().(type) {
	case *types.Signature:
		w.report(f, "field %s of wire type %s is a func; gob cannot encode it", f.Name(), owner)
	case *types.Chan:
		w.report(f, "field %s of wire type %s is a channel; gob cannot encode it", f.Name(), owner)
	case *types.Basic:
		switch u.Kind() {
		case types.Complex64, types.Complex128, types.UnsafePointer:
			w.report(f, "field %s of wire type %s has type %s; gob cannot encode it", f.Name(), owner, u)
		}
	case *types.Interface:
		if !w.registered {
			w.report(f,
				"interface-typed field %s of wire type %s crosses the wire without any gob.Register in this package; concrete values cannot decode",
				f.Name(), owner)
		}
	default:
		w.walk(f.Type())
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
