package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RPCErr enforces the paper's graceful-degradation contract at the
// remote-invocation boundary: when the surrogate disappears, every
// caller must see the transport failure as an error, never lose it and
// never crash.
//
// Three rules:
//
//  1. any call into the remote package (path suffix "internal/remote")
//     whose signature returns an error must not discard it — neither
//     as a bare expression statement nor by assigning the error
//     position to the blank identifier;
//  2. panic is banned outside package main and test files — library
//     code returns errors;
//  3. a retry wrapper — a non-test function whose name contains "retry"
//     and whose body loops — must consult its context (context.Canceled,
//     ctx.Err, or ctx.Done), so cancellation propagates unretried
//     instead of holding a canceled caller hostage to backoff sleeps.
var RPCErr = &Analyzer{
	Name: "rpcerr",
	Doc:  "errors returned by the remote-invocation module must be checked; panic is banned outside main packages and tests; retry loops must propagate context cancellation unretried",
	Run:  runRPCErr,
}

// remotePathSuffix identifies the remote-invocation module.
const remotePathSuffix = "internal/remote"

func runRPCErr(pass *Pass) error {
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		if !isTest {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkRetryWrapper(pass, fd)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedRemoteError(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedRemoteError(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedRemoteError(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankRemoteError(pass, n)
			case *ast.CallExpr:
				if !isTest && pass.Pkg.Name() != "main" && isPanicCall(pass, n) {
					pass.Reportf(n.Pos(),
						"panic in library code; return an error with context instead (graceful degradation, paper §2)")
				}
			}
			return true
		})
	}
	return nil
}

// remoteErrorCall reports whether the call's static callee belongs to
// the remote module and returns an error.
func remoteErrorCall(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), remotePathSuffix) {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return fn, true
		}
	}
	return nil, false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func checkDroppedRemoteError(pass *Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if fn, ok := remoteErrorCall(pass, call); ok {
		pass.Reportf(call.Pos(),
			"%scall to %s discards its error; a vanished surrogate must surface as a transport failure",
			how, fn.Name())
	}
}

// checkRetryWrapper enforces rule 3: a looping function named *retry*
// must reference context.Canceled or call ctx.Err()/ctx.Done() somewhere
// in its body. Name matching is deliberate — the retry contract is part
// of the wrapper's interface, and an uncancelable loop behind a "retry"
// name is exactly the bug the disconnection tests keep catching.
func checkRetryWrapper(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !strings.Contains(strings.ToLower(fd.Name.Name), "retry") {
		return
	}
	loops, consults := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = true
		case *ast.SelectorExpr:
			if usesContextCancellation(pass, n.Sel) {
				consults = true
			}
		}
		return true
	})
	if loops && !consults {
		pass.Reportf(fd.Pos(),
			"retry wrapper %s never consults its context; context.Canceled must propagate unretried (check ctx.Err in the loop)",
			fd.Name.Name)
	}
}

// usesContextCancellation reports whether the selected identifier
// resolves to package context's Canceled variable or its Err/Done
// methods (including their use through the context.Context interface).
func usesContextCancellation(pass *Pass, sel *ast.Ident) bool {
	obj := pass.Info.Uses[sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	switch obj.Name() {
	case "Canceled", "Err", "Done":
		return true
	}
	return false
}

// checkBlankRemoteError flags `_`-discards of error results from
// remote-module calls, in both `v, _ := f()` and `_ = f()` forms.
func checkBlankRemoteError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := remoteErrorCall(pass, call)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
			pass.Reportf(id.Pos(),
				"error result of %s assigned to _; check it or suppress with %srpcerr <reason>",
				fn.Name(), AllowDirective)
		}
	}
}
