package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RPCErr enforces the paper's graceful-degradation contract at the
// remote-invocation boundary: when the surrogate disappears, every
// caller must see the transport failure as an error, never lose it and
// never crash.
//
// Two rules:
//
//  1. any call into the remote package (path suffix "internal/remote")
//     whose signature returns an error must not discard it — neither
//     as a bare expression statement nor by assigning the error
//     position to the blank identifier;
//  2. panic is banned outside package main and test files — library
//     code returns errors.
var RPCErr = &Analyzer{
	Name: "rpcerr",
	Doc:  "errors returned by the remote-invocation module must be checked; panic is banned outside main packages and tests",
	Run:  runRPCErr,
}

// remotePathSuffix identifies the remote-invocation module.
const remotePathSuffix = "internal/remote"

func runRPCErr(pass *Pass) error {
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedRemoteError(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedRemoteError(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedRemoteError(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankRemoteError(pass, n)
			case *ast.CallExpr:
				if !isTest && pass.Pkg.Name() != "main" && isPanicCall(pass, n) {
					pass.Reportf(n.Pos(),
						"panic in library code; return an error with context instead (graceful degradation, paper §2)")
				}
			}
			return true
		})
	}
	return nil
}

// remoteErrorCall reports whether the call's static callee belongs to
// the remote module and returns an error.
func remoteErrorCall(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), remotePathSuffix) {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return fn, true
		}
	}
	return nil, false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func checkDroppedRemoteError(pass *Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if fn, ok := remoteErrorCall(pass, call); ok {
		pass.Reportf(call.Pos(),
			"%scall to %s discards its error; a vanished surrogate must surface as a transport failure",
			how, fn.Name())
	}
}

// checkBlankRemoteError flags `_`-discards of error results from
// remote-module calls, in both `v, _ := f()` and `_ = f()` forms.
func checkBlankRemoteError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := remoteErrorCall(pass, call)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
			pass.Reportf(id.Pos(),
				"error result of %s assigned to _; check it or suppress with %srpcerr <reason>",
				fn.Name(), AllowDirective)
		}
	}
}
