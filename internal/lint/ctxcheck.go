package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheck enforces the platform's cancellation discipline. The
// disconnection machinery (PR 4) made every blocking remote operation
// deadline- and cancel-aware; this analyzer keeps new code on that
// contract instead of quietly minting uncancellable contexts mid-stack.
//
// Four rules:
//
//  1. context.Background() and context.TODO() are banned outside
//     package main and test files. The one blessed library shape is the
//     ctx-less compatibility wrapper: a function whose body is a single
//     statement forwarding to its *Context-suffixed variant
//     (`func (c *Client) Ping() error { return c.PingContext(context.Background()) }`).
//     Everywhere else, thread the caller's context.
//  2. a struct field of type context.Context is flagged: contexts are
//     call-scoped values, not state. Storing one hides lifetime bugs
//     (the stored ctx outlives its cancel) and defeats per-call
//     deadlines. Derive cancellation from the owner's stop channel
//     instead (remote.Peer's lifeCtx shape).
//  3. a context.Context parameter must be the function's first
//     parameter (the stdlib convention every caller pattern-matches on).
//  4. a function that accepts a context must use it — pass it on or
//     consult Done/Err/Deadline. An ignored ctx parameter advertises
//     cancellation it does not deliver.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "ban context.Background outside entry points and single-statement compatibility wrappers, flag stored contexts in structs, require ctx first and actually threaded",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkStoredContext(pass, n)
			case *ast.FuncDecl:
				checkCtxParam(pass, n)
				if !isMain && !isTest {
					checkBackgroundCalls(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkStoredContext flags struct fields of type context.Context.
func checkStoredContext(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		pass.Reportf(field.Pos(),
			"context.Context stored in a struct field; contexts are call-scoped — accept one per method or derive cancellation from the owner's stop channel")
	}
}

// checkCtxParam enforces rules 3 and 4 on one function declaration.
func checkCtxParam(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	var ctxVars []*types.Var
	pos := 0
	for _, field := range fd.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if t != nil && isContextType(t) {
			if pos != 0 {
				pass.Reportf(field.Pos(),
					"context.Context must be the first parameter of %s (stdlib convention)", fd.Name.Name)
			}
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok && name.Name != "_" {
					ctxVars = append(ctxVars, v)
				}
			}
		}
		pos += names
	}
	if fd.Body == nil || len(ctxVars) == 0 {
		return
	}
	for _, v := range ctxVars {
		if !usesVar(pass, fd.Body, v) {
			pass.Reportf(fd.Pos(),
				"%s accepts a context.Context but never uses it; thread it into the blocking calls or drop the parameter", fd.Name.Name)
		}
	}
}

// usesVar reports whether the body references v.
func usesVar(pass *Pass, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkBackgroundCalls enforces rule 1 within one declaration.
func checkBackgroundCalls(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	wrapper := isCompatWrapper(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if wrapper {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s mid-library; accept a ctx from the caller (or make this a single-statement wrapper over the *Context variant)",
			fn.Name())
		return true
	})
}

// isCompatWrapper reports whether fd is the blessed ctx-less
// compatibility shape: a body of exactly one statement that calls a
// function whose name ends in "Context".
func isCompatWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasSuffix(fun.Name, "Context")
	case *ast.SelectorExpr:
		return strings.HasSuffix(fun.Sel.Name, "Context")
	}
	return false
}
