package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineCheck enforces joinable goroutine lifecycles in library code.
// The platform's graceful-degradation story rests on background
// machinery — health probes, release flushers, telemetry servers — and
// every one of those loops must provably stop when its owner is closed:
// a goroutine that outlives Close is a leak that multiplies under
// multi-tenant fleets (one peer per client, several loops per peer).
//
// Every `go` statement outside package main and test files must carry
// one of these join/shutdown shapes in the spawned body:
//
//  1. a sync.WaitGroup join — the body calls Done() on a WaitGroup
//     (usually deferred), so an owner can Wait for it;
//  2. a shutdown-signal select — a `select` with a channel-receive case
//     whose body terminates (return or break), covering both
//     close-signalled done channels and ctx.Done();
//  3. a channel-range loop — `for range ch` terminates when the owner
//     closes the channel;
//  4. a completion send — the body's final statement sends on a
//     channel, the single-bounded-operation-then-signal shape
//     (`go func() { errc <- srv.Serve(ln) }()`).
//
// A spawned call to a function declared in the same package is checked
// against that function's body. A spawned call whose body the analyzer
// cannot see (another package's function, an interface method, a
// function value) is flagged: the join path must be provable where the
// goroutine is launched.
var GoroutineCheck = &Analyzer{
	Name: "goroutinecheck",
	Doc:  "every go statement in library code must have a provable join/shutdown path: a WaitGroup Done, a shutdown-channel select, a channel range, or a completion send",
	Run:  runGoroutineCheck,
}

func runGoroutineCheck(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // cmd entry points own the process lifetime
	}
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, decls, gs)
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function and method bodies by
// their types.Func, so `go recv.method()` spawns resolve to a body.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.BlockStmt {
	out := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd.Body
			}
		}
	}
	return out
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.BlockStmt, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(pass, gs.Call); fn != nil {
		body = decls[fn] // nil for out-of-package callees
	}
	if body == nil {
		pass.Reportf(gs.Pos(),
			"go statement spawns a body this package cannot see; launch a local func with a provable join/shutdown path instead")
		return
	}
	if !joinable(pass, body) {
		pass.Reportf(gs.Pos(),
			"goroutine has no provable join/shutdown path (WaitGroup Done, shutdown-channel select, channel range, or completion send); it can outlive Close")
	}
}

// joinable reports whether the goroutine body carries one of the four
// accepted join/shutdown shapes.
func joinable(pass *Pass, body *ast.BlockStmt) bool {
	// Shape 4: the final statement is a channel send — the goroutine
	// performs bounded work and signals completion.
	if n := len(body.List); n > 0 {
		if _, ok := body.List[n-1].(*ast.SendStmt); ok {
			return true
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested goroutine's body proves nothing here
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.SelectStmt:
			if selectHasTerminatingReceive(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWaitGroupDone matches wg.Done() where wg is a sync.WaitGroup (or a
// field/pointer to one).
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// selectHasTerminatingReceive reports whether the select has a
// channel-receive case whose body terminates the goroutine's loop —
// a return, or a break out of the enclosing for.
func selectHasTerminatingReceive(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil || !isReceiveComm(cc.Comm) {
			continue
		}
		if terminates(cc.Body) {
			return true
		}
	}
	return false
}

// isReceiveComm matches the receive shapes a CommClause can take:
// `<-ch`, `v := <-ch`, and `v, ok := <-ch`.
func isReceiveComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// terminates reports whether a case body ends the surrounding loop:
// a return statement, or a break/goto branching out.
func terminates(body []ast.Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				return true
			}
		case *ast.BlockStmt:
			if terminates(s.List) {
				return true
			}
		case *ast.IfStmt:
			if terminates(s.Body.List) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
