package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces AIDE's mutex discipline in the packages that run
// under concurrent method-dispatch hooks (vm, monitor) and under the
// peer's RPC worker pool (remote).
//
// For every struct type holding a sync.Mutex or sync.RWMutex it infers
// the guarded field set — fields written at least once while the mutex
// is held — and then requires:
//
//  1. exported methods touch guarded fields only while holding the
//     mutex that guards them, and
//  2. no method calls another method of the same receiver that
//     acquires a mutex the caller already holds (the self-deadlock
//     shape; Go mutexes are not reentrant).
//
// Unexported methods are exempt from rule 1: by convention they state
// "caller holds mu" (the repo's *Locked helpers). Rule 2 applies to
// every method.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "exported methods of mutex-holding types must hold the mutex around guarded fields and must not re-acquire it through same-receiver calls",
	Run:  runLockCheck,
}

// lockAccess is one touch of a receiver field inside a method body.
type lockAccess struct {
	field *types.Var
	write bool
	held  []*types.Var // mutex fields held at the access
	pos   token.Pos
}

// lockCall is a call to a same-receiver method while analyzing a body.
type lockCall struct {
	callee *types.Func
	held   []*types.Var
	pos    token.Pos
}

// methodFacts is what one walk of a method body produces.
type methodFacts struct {
	fn       *types.Func
	decl     *ast.FuncDecl
	accesses []lockAccess
	calls    []lockCall

	// acquires holds the mutexes this method locks from an unheld
	// entry state. A body whose first operation on a mutex is an
	// Unlock is a caller-holds-lock helper doing a temporary release
	// (the VM's pressure-handler shape); its re-Lock is not an
	// acquisition.
	acquires map[*types.Var]bool
	firstOp  map[*types.Var]string
}

// applyMutexOp updates the held set and acquisition facts for one
// Lock/Unlock-family call on mutex field mu.
func (w *lockWalker) applyMutexOp(mu *types.Var, op string) {
	switch op {
	case "Lock", "RLock":
		w.held[mu] = true
		if _, seen := w.facts.firstOp[mu]; !seen {
			w.facts.firstOp[mu] = op
			w.facts.acquires[mu] = true
		}
	case "Unlock", "RUnlock":
		delete(w.held, mu)
		if _, seen := w.facts.firstOp[mu]; !seen {
			w.facts.firstOp[mu] = op
		}
	case "TryLock", "TryRLock":
		// Result-dependent; treat as not held to stay conservative.
	}
}

func runLockCheck(pass *Pass) error {
	for _, typ := range mutexStructs(pass) {
		facts := make(map[*types.Func]*methodFacts)
		for fn, decl := range methodsOf(pass, typ.named) {
			w := newLockWalker(pass, typ, decl)
			if w == nil {
				continue
			}
			w.walkBody(decl.Body)
			w.facts.fn = fn
			w.facts.decl = decl
			facts[fn] = w.facts
		}

		// Infer the guarded set: fields written under a mutex anywhere
		// in the type's methods, mapped to the mutexes seen guarding
		// them.
		guardians := make(map[*types.Var][]*types.Var)
		for _, f := range facts {
			for _, a := range f.accesses {
				if a.write && len(a.held) > 0 {
					guardians[a.field] = appendMissing(guardians[a.field], a.held)
				}
			}
		}

		for _, f := range facts {
			exported := f.fn.Exported()
			for _, a := range f.accesses {
				mus, guarded := guardians[a.field]
				if !guarded || !exported {
					continue
				}
				if !holdsAny(a.held, mus) {
					pass.Reportf(a.pos,
						"%s.%s accesses %s.%s without holding %s (guarded field)",
						typ.named.Obj().Name(), f.fn.Name(),
						typ.named.Obj().Name(), a.field.Name(), mus[0].Name())
				}
			}
			for _, c := range f.calls {
				callee, ok := facts[c.callee]
				if !ok || len(c.held) == 0 {
					continue
				}
				for mu := range callee.acquires {
					if holdsAny(c.held, []*types.Var{mu}) {
						pass.Reportf(c.pos,
							"%s.%s calls %s.%s while holding %s, which %s re-acquires (deadlock)",
							typ.named.Obj().Name(), f.fn.Name(),
							typ.named.Obj().Name(), c.callee.Name(),
							mu.Name(), c.callee.Name())
					}
				}
			}
		}
	}
	return nil
}

func appendMissing(dst []*types.Var, add []*types.Var) []*types.Var {
	for _, v := range add {
		found := false
		for _, d := range dst {
			if d == v {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, v)
		}
	}
	return dst
}

func holdsAny(held, want []*types.Var) bool {
	for _, h := range held {
		for _, w := range want {
			if h == w {
				return true
			}
		}
	}
	return false
}

// mutexStruct is a named struct type with at least one mutex field.
type mutexStruct struct {
	named   *types.Named
	st      *types.Struct
	mutexes map[*types.Var]bool
}

func mutexStructs(pass *Pass) []*mutexStruct {
	var out []*mutexStruct
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mus := map[*types.Var]bool{}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				mus[st.Field(i)] = true
			}
		}
		if len(mus) > 0 {
			out = append(out, &mutexStruct{named: named, st: st, mutexes: mus})
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// methodsOf returns the package's method declarations on the named type.
func methodsOf(pass *Pass, named *types.Named) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if t == named.Obj().Type() || types.Identical(t, named.Obj().Type()) {
				out[fn] = fd
			}
		}
	}
	return out
}

// lockWalker tracks the held-mutex set through one method body.
type lockWalker struct {
	pass  *Pass
	typ   *mutexStruct
	recv  types.Object
	held  map[*types.Var]bool
	facts *methodFacts
}

func newLockWalker(pass *Pass, typ *mutexStruct, decl *ast.FuncDecl) *lockWalker {
	if len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil // unnamed receiver: cannot touch fields
	}
	recv := pass.Info.Defs[decl.Recv.List[0].Names[0]]
	if recv == nil {
		return nil
	}
	return &lockWalker{
		pass: pass,
		typ:  typ,
		recv: recv,
		held: map[*types.Var]bool{},
		facts: &methodFacts{
			acquires: map[*types.Var]bool{},
			firstOp:  map[*types.Var]string{},
		},
	}
}

func (w *lockWalker) heldSnapshot() []*types.Var {
	var out []*types.Var
	for mu, on := range w.held {
		if on {
			out = append(out, mu)
		}
	}
	return out
}

// walkBody processes statements in order and reports whether the block
// definitely terminates (return / panic / branch).
func (w *lockWalker) walkBody(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if isPanicCall(w.pass, s.X) {
			w.walkExpr(s.X, false)
			return true
		}
		w.walkExpr(s.X, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.walkExpr(r, false)
		}
		for _, l := range s.Lhs {
			w.walkExpr(l, true)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, true)
	case *ast.SendStmt:
		w.walkExpr(s.Chan, false)
		w.walkExpr(s.Value, false)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to the end of the
		// method; it is the idiomatic Lock();defer Unlock() pairing.
		if mu, op, ok := w.mutexOp(s.Call); ok {
			if op == "Lock" || op == "RLock" {
				w.applyMutexOp(mu, op)
			}
			return false
		}
		w.walkCall(s.Call)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's lock.
		saved := w.copyHeld()
		w.held = map[*types.Var]bool{}
		w.walkCall(s.Call)
		w.held = saved
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, false)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkBody(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond, false)
		pre := w.copyHeld()
		thenTerm := w.walkBody(s.Body)
		thenHeld := w.held
		w.held = w.copyFrom(pre)
		elseTerm := false
		elseHeld := w.held
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else)
			elseHeld = w.held
		}
		switch {
		case thenTerm && elseTerm:
			w.held = pre
			return true
		case thenTerm:
			w.held = elseHeld
		case elseTerm:
			w.held = thenHeld
		default:
			w.held = intersectHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, false)
		}
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.walkIsolated(func() { w.walkBody(s.Body) })
	case *ast.RangeStmt:
		w.walkExpr(s.X, false)
		w.walkIsolated(func() { w.walkBody(s.Body) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, false)
		}
		w.walkCaseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCaseBodies(s.Body)
	case *ast.SelectStmt:
		w.walkCaseBodies(s.Body)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, false)
					}
				}
			}
		}
	}
	return false
}

// walkCaseBodies analyzes each case clause from the current state and
// conservatively restores the pre-switch state afterwards.
func (w *lockWalker) walkCaseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.walkExpr(e, false)
			}
			w.walkIsolated(func() {
				for _, s := range c.Body {
					if w.walkStmt(s) {
						break
					}
				}
			})
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm)
			}
			w.walkIsolated(func() {
				for _, s := range c.Body {
					if w.walkStmt(s) {
						break
					}
				}
			})
		}
	}
}

// walkIsolated runs fn and restores the held set afterwards (used for
// loop and case bodies, whose net lock effect is assumed balanced).
func (w *lockWalker) walkIsolated(fn func()) {
	saved := w.copyHeld()
	fn()
	w.held = saved
}

func (w *lockWalker) copyHeld() map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(w.held))
	for k, v := range w.held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) copyFrom(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b map[*types.Var]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for k, v := range a {
		if v && b[k] {
			out[k] = true
		}
	}
	return out
}

func (w *lockWalker) walkExpr(e ast.Expr, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.SelectorExpr:
		if f, ok := w.recvField(e); ok {
			if !w.typ.mutexes[f] {
				w.facts.accesses = append(w.facts.accesses, lockAccess{
					field: f, write: write, held: w.heldSnapshot(), pos: e.Pos(),
				})
			}
			return
		}
		w.walkExpr(e.X, false)
	case *ast.IndexExpr:
		w.walkExpr(e.X, write)
		w.walkExpr(e.Index, false)
	case *ast.SliceExpr:
		w.walkExpr(e.X, write)
		w.walkExpr(e.Low, false)
		w.walkExpr(e.High, false)
		w.walkExpr(e.Max, false)
	case *ast.StarExpr:
		w.walkExpr(e.X, write)
	case *ast.ParenExpr:
		w.walkExpr(e.X, write)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, false)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, false)
		w.walkExpr(e.Y, false)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.walkExpr(elt, false)
		}
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, false)
	case *ast.FuncLit:
		// A literal may run later (callback, goroutine): analyze it
		// with no lock held so unguarded touches inside still surface.
		saved := w.copyHeld()
		w.held = map[*types.Var]bool{}
		w.walkBody(e.Body)
		w.held = saved
	}
}

func (w *lockWalker) walkCall(call *ast.CallExpr) {
	if mu, op, ok := w.mutexOp(call); ok {
		w.applyMutexOp(mu, op)
		return
	}
	if fn, ok := w.recvMethodCall(call); ok {
		w.facts.calls = append(w.facts.calls, lockCall{
			callee: fn, held: w.heldSnapshot(), pos: call.Pos(),
		})
		for _, a := range call.Args {
			w.walkExpr(a, false)
		}
		return
	}
	w.walkExpr(call.Fun, false)
	for _, a := range call.Args {
		w.walkExpr(a, false)
	}
}

// mutexOp matches recv.mu.Lock() (named mutex field) and recv.Lock()
// (embedded mutex) call shapes against the receiver's mutex fields.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	// recv.mu.Lock()
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if f, ok := w.recvField(inner); ok && w.typ.mutexes[f] {
			return f, op, true
		}
		return nil, "", false
	}
	// recv.Lock() through an embedded mutex.
	if id, ok := sel.X.(*ast.Ident); ok && w.pass.Info.ObjectOf(id) == w.recv {
		if s := w.pass.Info.Selections[sel]; s != nil && len(s.Index()) == 2 {
			if f, ok := w.typ.fieldAt(s.Index()[0]); ok && w.typ.mutexes[f] {
				return f, op, true
			}
		}
	}
	return nil, "", false
}

func (t *mutexStruct) fieldAt(i int) (*types.Var, bool) {
	if i < 0 || i >= t.st.NumFields() {
		return nil, false
	}
	return t.st.Field(i), true
}

// recvField matches `recv.f` where f is a field of the receiver's
// struct type.
func (w *lockWalker) recvField(sel *ast.SelectorExpr) (*types.Var, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.pass.Info.ObjectOf(id) != w.recv {
		return nil, false
	}
	s := w.pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, false
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || len(s.Index()) != 1 {
		return nil, false
	}
	return f, true
}

// recvMethodCall matches `recv.M(...)` where M is a method of the
// receiver's type.
func (w *lockWalker) recvMethodCall(call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.pass.Info.ObjectOf(id) != w.recv {
		return nil, false
	}
	s := w.pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, false
	}
	fn, ok := s.Obj().(*types.Func)
	return fn, ok
}

func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}
