package aide

import (
	"errors"
	"strings"
	"testing"
	"time"

	"aide/internal/remote"
	"aide/internal/telemetry"
)

// probeSpans filters a tracer's events down to the probe spans.
func probeSpans(tr *Tracer) []telemetry.Span {
	var out []telemetry.Span
	for _, s := range tr.Events() {
		if s.Kind == telemetry.SpanProbe {
			out = append(out, s)
		}
	}
	return out
}

func TestAttachBestTCPSkipsUnreachableCandidate(t *testing.T) {
	reg := demoRegistry(t)
	surrogate := NewSurrogate(reg)
	addr, err := surrogate.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer surrogate.Close()

	tr := NewTracer(16)
	tr.SetEnabled(true)
	client := NewClient(reg, WithTelemetry(nil, tr))
	defer client.Close()

	// Port 1 on loopback refuses immediately: a candidate that is present
	// in the list but unreachable must be probed, recorded, and skipped.
	dead := "127.0.0.1:1"
	chosen, err := client.AttachBestTCP([]string{dead, addr})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != addr {
		t.Fatalf("attached to %s, want the reachable surrogate %s", chosen, addr)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	spans := probeSpans(tr)
	if len(spans) != 2 {
		t.Fatalf("got %d probe spans, want one per candidate: %+v", len(spans), spans)
	}
	byAddr := make(map[string]telemetry.Span, len(spans))
	for _, s := range spans {
		byAddr[s.Note] = s
	}
	if s, ok := byAddr[dead]; !ok || !s.Err {
		t.Fatalf("unreachable candidate span = %+v, want Err", s)
	}
	if s, ok := byAddr[addr]; !ok || s.Err {
		t.Fatalf("reachable candidate span = %+v, want success", s)
	} else {
		if s.Dur <= 0 {
			t.Fatalf("reachable probe span must carry the measured RTT, got %v", s.Dur)
		}
		if s.Bytes <= 0 {
			t.Fatalf("reachable probe span must carry free bytes, got %d", s.Bytes)
		}
	}
}

// TestRankSurrogatesDeterministicTieBreak pins the ranking as a pure
// function of the probe results: when every resource signal ties — same
// RTT bucket, sessions, free memory, CPU — candidates fall back to a
// stable address sort, so the chosen surrogate never depends on input
// (or map-iteration) order.
func TestRankSurrogatesDeterministicTieBreak(t *testing.T) {
	tied := func(addr string, rtt time.Duration) SurrogateProbe {
		return SurrogateProbe{Addr: addr, Info: remote.PeerInfo{
			RTT:       rtt,
			FreeBytes: 64 << 20,
			CPUSpeed:  2.0,
		}}
	}
	probes := []SurrogateProbe{
		// The four 10.0.0.x probes land in the same 500 µs RTT bucket
		// despite different raw RTTs; "0.0.0.0:1" is a genuinely slower
		// bucket and must sort after them despite its smaller address.
		tied("10.0.0.3:7707", 400*time.Microsecond),
		tied("10.0.0.1:7707", 499*time.Microsecond),
		tied("10.0.0.2:7707", 100*time.Microsecond),
		tied("10.0.0.0:7707", 250*time.Microsecond),
		tied("0.0.0.0:1", 3*time.Millisecond),
		{Addr: "10.0.0.9:7707", Err: errors.New("unreachable")},
	}
	want := []string{"10.0.0.0:7707", "10.0.0.1:7707", "10.0.0.2:7707", "10.0.0.3:7707", "0.0.0.0:1", "10.0.0.9:7707"}
	// Every rotation of the input must produce the identical ranking.
	for rot := range probes {
		in := append(append([]SurrogateProbe(nil), probes[rot:]...), probes[:rot]...)
		got := RankSurrogates(in)
		for i, w := range want {
			if got[i].Addr != w {
				t.Fatalf("rotation %d: rank[%d] = %s, want %s", rot, i, got[i].Addr, w)
			}
		}
	}
	// The resource signals still dominate the address tie-break: more
	// free memory wins within a bucket regardless of address order.
	roomy := tied("10.0.0.8:7707", 200*time.Microsecond)
	roomy.Info.FreeBytes = 512 << 20
	got := RankSurrogates(append([]SurrogateProbe{roomy}, probes...))
	if got[0].Addr != roomy.Addr {
		t.Fatalf("rank[0] = %s, want the roomiest candidate %s", got[0].Addr, roomy.Addr)
	}
}

// TestAttachBestTCPFallsThroughRejection pins the sweep's admission
// behavior: when the best-ranked surrogate refuses the attach with a
// typed rejection, the client walks down the ranking instead of failing.
func TestAttachBestTCPFallsThroughRejection(t *testing.T) {
	reg := demoRegistry(t)
	// The full surrogate must rank FIRST so the sweep actually hits its
	// rejection: both surrogates carry one occupant (session counts tie)
	// and the full one advertises far more free heap, which wins the
	// next rung of the ranking ladder deterministically.
	full := NewSurrogate(reg, WithMaxSessions(1), WithHeap(256<<20))
	defer full.Close()
	fullAddr, err := full.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	open := NewSurrogate(reg, WithHeap(8<<20))
	defer open.Close()
	openAddr, err := open.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{fullAddr, openAddr} {
		occupant := NewClient(reg, WithHeap(1<<20))
		defer occupant.Close()
		if err := occupant.AttachTCP(addr); err != nil {
			t.Fatalf("occupant attach %s: %v", addr, err)
		}
	}

	c := NewClient(reg, WithHeap(1<<20))
	defer c.Close()
	chosen, err := c.AttachBestTCP([]string{fullAddr, openAddr})
	if err != nil {
		t.Fatalf("attach sweep: %v", err)
	}
	if chosen != openAddr {
		t.Fatalf("attached to %s, want the open surrogate %s", chosen, openAddr)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachBestTCPAllCandidatesFail(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	client := NewClient(demoRegistry(t), WithTelemetry(nil, tr))
	defer client.Close()

	dead := []string{"127.0.0.1:1", "127.0.0.1:2"}
	if _, err := client.AttachBestTCP(dead); err == nil {
		t.Fatal("attach with no reachable candidate must fail")
	} else if !strings.Contains(err.Error(), "no reachable surrogate") {
		t.Fatalf("err = %v, want the no-reachable-surrogate failure", err)
	}
	if n := client.Surrogates(); n != 0 {
		t.Fatalf("client attached %d surrogates after all probes failed", n)
	}

	spans := probeSpans(tr)
	if len(spans) != len(dead) {
		t.Fatalf("got %d probe spans, want one per candidate: %+v", len(spans), spans)
	}
	for _, s := range spans {
		if !s.Err {
			t.Fatalf("probe span for dead candidate %s not marked Err", s.Note)
		}
	}
}
