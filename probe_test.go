package aide

import (
	"strings"
	"testing"

	"aide/internal/telemetry"
)

// probeSpans filters a tracer's events down to the probe spans.
func probeSpans(tr *Tracer) []telemetry.Span {
	var out []telemetry.Span
	for _, s := range tr.Events() {
		if s.Kind == telemetry.SpanProbe {
			out = append(out, s)
		}
	}
	return out
}

func TestAttachBestTCPSkipsUnreachableCandidate(t *testing.T) {
	reg := demoRegistry(t)
	surrogate := NewSurrogate(reg)
	addr, err := surrogate.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer surrogate.Close()

	tr := NewTracer(16)
	tr.SetEnabled(true)
	client := NewClient(reg, WithTelemetry(nil, tr))
	defer client.Close()

	// Port 1 on loopback refuses immediately: a candidate that is present
	// in the list but unreachable must be probed, recorded, and skipped.
	dead := "127.0.0.1:1"
	chosen, err := client.AttachBestTCP([]string{dead, addr})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != addr {
		t.Fatalf("attached to %s, want the reachable surrogate %s", chosen, addr)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	spans := probeSpans(tr)
	if len(spans) != 2 {
		t.Fatalf("got %d probe spans, want one per candidate: %+v", len(spans), spans)
	}
	byAddr := make(map[string]telemetry.Span, len(spans))
	for _, s := range spans {
		byAddr[s.Note] = s
	}
	if s, ok := byAddr[dead]; !ok || !s.Err {
		t.Fatalf("unreachable candidate span = %+v, want Err", s)
	}
	if s, ok := byAddr[addr]; !ok || s.Err {
		t.Fatalf("reachable candidate span = %+v, want success", s)
	} else {
		if s.Dur <= 0 {
			t.Fatalf("reachable probe span must carry the measured RTT, got %v", s.Dur)
		}
		if s.Bytes <= 0 {
			t.Fatalf("reachable probe span must carry free bytes, got %d", s.Bytes)
		}
	}
}

func TestAttachBestTCPAllCandidatesFail(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	client := NewClient(demoRegistry(t), WithTelemetry(nil, tr))
	defer client.Close()

	dead := []string{"127.0.0.1:1", "127.0.0.1:2"}
	if _, err := client.AttachBestTCP(dead); err == nil {
		t.Fatal("attach with no reachable candidate must fail")
	} else if !strings.Contains(err.Error(), "no reachable surrogate") {
		t.Fatalf("err = %v, want the no-reachable-surrogate failure", err)
	}
	if n := client.Surrogates(); n != 0 {
		t.Fatalf("client attached %d surrogates after all probes failed", n)
	}

	spans := probeSpans(tr)
	if len(spans) != len(dead) {
		t.Fatalf("got %d probe spans, want one per candidate: %+v", len(spans), spans)
	}
	for _, s := range spans {
		if !s.Err {
			t.Fatalf("probe span for dead candidate %s not marked Err", s.Note)
		}
	}
}
