module aide

go 1.22
