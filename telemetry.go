package aide

import (
	"aide/internal/telemetry"
)

// Re-exported telemetry types, so platform embedders can construct a
// registry and tracer without importing the internal package path.
type (
	// TelemetryRegistry is a named collection of metrics instruments.
	TelemetryRegistry = telemetry.Registry

	// Tracer records structured offload-event spans in a bounded ring.
	Tracer = telemetry.Tracer
)

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *TelemetryRegistry { return telemetry.New() }

// NewTracer returns an event tracer holding the last capacity spans.
// It starts disabled; call SetEnabled(true) to record.
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// WithTelemetry attaches a metrics registry and an event tracer to the
// platform being constructed: the client or surrogate registers its
// aide_* instrument families on reg and emits offload-event spans to tr.
// Either argument may be nil to enable only the other; the option is
// inert when both are nil. Serve the registry and tracer over HTTP with
// telemetry.Handler / telemetry.Serve, or scrape them with aide-stat.
func WithTelemetry(reg *TelemetryRegistry, tr *Tracer) Option {
	return func(o *options) { o.telemetry = reg; o.tracer = tr }
}

// Platform-level (policy and lifecycle) metric names.
const (
	metricPartitions       = "aide_policy_partitions_total"
	metricPartitionRuntime = "aide_policy_partition_runtime_seconds"
	metricPolicyChosen     = "aide_policy_chosen_total"
	metricPolicyRejected   = "aide_policy_rejected_total"
	metricOffloads         = "aide_policy_offloads_total"
	metricOffloadedBytes   = "aide_policy_offloaded_bytes_total"
	metricRebalances       = "aide_policy_rebalances_total"
	metricAttaches         = "aide_platform_attaches_total"
	metricDisconnects      = "aide_platform_disconnects_total"
	metricHandoffs         = "aide_platform_handoffs_total"
	metricSpecLocalWins    = "aide_platform_speculation_local_wins_total"
	metricSpecRemoteWins   = "aide_platform_speculation_remote_wins_total"
	metricSpecMisses       = "aide_platform_speculation_misses_total"
)

// Surrogate session-control metric names.
const (
	metricSessionsActive    = "aide_surrogate_sessions_active"
	metricSessionsAdmitted  = "aide_surrogate_sessions_admitted_total"
	metricSessionsRejected  = "aide_surrogate_sessions_rejected_total"
	metricSessionsShed      = "aide_surrogate_sessions_shed_total"
	metricSessionsEvicted   = "aide_surrogate_sessions_evicted_total"
	metricSessionsDrained   = "aide_surrogate_sessions_drained_total"
	metricSurrogateLive     = "aide_surrogate_heap_live_bytes"
	metricSurrogateCommit   = "aide_surrogate_heap_committed_bytes"
	metricSurrogateCapacity = "aide_surrogate_heap_capacity_bytes"
)

// surrogateMetrics instruments the surrogate's session control. Every
// counter is a nil-safe no-op without WithTelemetry; the occupancy gauges
// sample the surrogate at scrape time and are registered once per
// surrogate (session VMs deliberately register nothing, so tenant churn
// cannot grow the registry).
type surrogateMetrics struct {
	admitted *telemetry.Counter
	rejected *telemetry.Counter
	shed     *telemetry.Counter
	evicted  *telemetry.Counter
	drained  *telemetry.Counter
}

func newSurrogateMetrics(reg *telemetry.Registry, s *Surrogate) surrogateMetrics {
	if reg == nil {
		return surrogateMetrics{}
	}
	reg.GaugeFunc(metricSessionsActive, "Currently admitted tenant sessions.", func() int64 {
		return int64(s.Sessions())
	})
	reg.GaugeFunc(metricSurrogateLive, "Live bytes summed across tenant session heaps.", func() int64 {
		return s.Heap().Live
	})
	reg.GaugeFunc(metricSurrogateCommit, "Heap quota bytes committed to admitted sessions.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.committed
	})
	reg.GaugeFunc(metricSurrogateCapacity, "The surrogate's total heap budget in bytes.", func() int64 {
		return s.opts.heap
	})
	return surrogateMetrics{
		admitted: reg.Counter(metricSessionsAdmitted, "Tenant sessions admitted."),
		rejected: reg.Counter(metricSessionsRejected, "Tenant sessions rejected at the session or heap-quota cap."),
		shed:     reg.Counter(metricSessionsShed, "Tenant sessions refused by load shedding while degraded."),
		evicted:  reg.Counter(metricSessionsEvicted, "Tenant sessions evicted to reclaim capacity."),
		drained:  reg.Counter(metricSessionsDrained, "Tenant sessions handed off live to another surrogate."),
	}
}

// platformMetrics instruments the client's partitioning pipeline and
// surrogate lifecycle. Every field is a nil-safe no-op when the platform
// was built without WithTelemetry.
type platformMetrics struct {
	partitions       *telemetry.Counter
	partitionRuntime *telemetry.Histogram
	chosen           *telemetry.Counter
	rejected         *telemetry.Counter
	offloads         *telemetry.Counter
	offloadedBytes   *telemetry.Counter
	rebalances       *telemetry.Counter
	attaches         *telemetry.Counter
	disconnects      *telemetry.Counter
	handoffs         *telemetry.Counter
	specLocalWins    *telemetry.Counter
	specRemoteWins   *telemetry.Counter
	specMisses       *telemetry.Counter
}

func newPlatformMetrics(reg *telemetry.Registry) platformMetrics {
	if reg == nil {
		return platformMetrics{}
	}
	return platformMetrics{
		partitions:       reg.Counter(metricPartitions, "Partitioning pipeline runs (MINCUT + policy)."),
		partitionRuntime: reg.Histogram(metricPartitionRuntime, "Wall-clock runtime of one MINCUT candidate generation.", telemetry.DefaultLatencyBuckets()),
		chosen:           reg.Counter(metricPolicyChosen, "Partitionings accepted by the memory policy."),
		rejected:         reg.Counter(metricPolicyRejected, "Partitionings rejected as not beneficial."),
		offloads:         reg.Counter(metricOffloads, "Completed offload operations."),
		offloadedBytes:   reg.Counter(metricOffloadedBytes, "Object payload bytes moved to surrogates by offloads."),
		rebalances:       reg.Counter(metricRebalances, "Rebalance passes that ran the partitioning pipeline."),
		attaches:         reg.Counter(metricAttaches, "Surrogate connections attached."),
		disconnects:      reg.Counter(metricDisconnects, "Surrogate connections lost involuntarily."),
		handoffs:         reg.Counter(metricHandoffs, "Live session handoffs completed by this client."),
		specLocalWins:    reg.Counter(metricSpecLocalWins, "Speculative races won by the local clone."),
		specRemoteWins:   reg.Counter(metricSpecRemoteWins, "Speculative races won by the remote call."),
		specMisses:       reg.Counter(metricSpecMisses, "Speculation attempts that fell back to remote-only execution."),
	}
}
