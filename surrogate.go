package aide

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/remote"
	"aide/internal/snapshot"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// ErrDrainUnauthorized reports a wire drain directive refused because it
// did not present the surrogate's WithDrainKey credential (or because no
// key is configured, which disables wire drains entirely). Any connected
// tenant can reach the directive handler, so the directive itself must
// prove it speaks for the fleet coordinator — an unauthenticated drain
// would let one tenant redirect every other tenant's session state to an
// address of its choosing.
var ErrDrainUnauthorized = errors.New("aide: drain directive unauthorized")

// Surrogate is the platform on a nearby server that lends its resources to
// clients. A device can perform the role of a surrogate with respect to a
// client even though it may be used independently for other purposes
// (paper §2). One surrogate multiplexes many tenants: each attached client
// gets a private session VM carved out of the surrogate's heap budget, and
// admission control, load shedding, and eviction keep the shared budget
// honest under pressure.
type Surrogate struct {
	opts options
	reg  *Registry
	sm   surrogateMetrics

	// idle is the surrogate's own VM: the heap/clock reported before any
	// tenant attaches, and the construction point for the telemetry the
	// surrogate registers once (session VMs deliberately carry none — a
	// churning tenant must not grow the registry).
	idle *vm.VM

	mu sync.Mutex
	// sessions indexes every live session by its serving peer; order
	// holds the same sessions in attach order (oldest first), which makes
	// the single-tenant accessors (VM, Clock) deterministic.
	sessions map[*remote.Peer]*session
	order    []*session
	seq      uint64
	// admitted counts sessions past admission; committed sums their heap
	// quotas — the number the quota cap checks against the heap budget.
	admitted  int
	committed int64
	// Monotonic decision counters, surfaced by Stats().
	admittedTotal, rejectedTotal, shedTotal, evictedTotal, drainedTotal int64

	ln     net.Listener
	closed bool
	// wg joins the accept loop and the asynchronous reap goroutines;
	// Close waits on it so no goroutine outlives the surrogate. Add
	// happens under mu, serialized against Close's closed-flag flip, so
	// it can never race a Wait at zero.
	wg sync.WaitGroup
}

// session is one attached tenant: a private VM sized to the tenant's heap
// quota, the peer serving its requests, and the admission state machine —
// lobby (neither flag), admitted, or terminally rejected/evicted
// (rejectErr set, sticky).
type session struct {
	seq   uint64
	peer  *remote.Peer
	vm    *vm.VM
	quota int64

	// admitted is the gate's lock-free fast path; transitions happen
	// under the surrogate mutex. rejectErr is guarded by that mutex.
	admitted  atomic.Bool
	rejectErr error

	// draining flips when a live handoff of this session begins: the gate
	// answers every later work request with the typed remote.ErrDrained so
	// the client's drain handler blocks the calling thread until the slot
	// is re-pointed at the destination surrogate. A failed handoff clears
	// it and the session resumes in place.
	draining atomic.Bool
}

// SurrogateStats reports the surrogate's session-control decisions.
type SurrogateStats struct {
	// Active is the number of currently admitted sessions.
	Active int
	// Admitted counts sessions ever admitted; Rejected those refused at
	// the session or heap-quota cap; Shed those refused while degraded;
	// Evicted those torn down to reclaim capacity; Drained those handed
	// off live to another surrogate.
	Admitted int64
	Rejected int64
	Shed     int64
	Evicted  int64
	Drained  int64
}

// NewSurrogate builds a surrogate platform over the shared class registry.
// Surrogates generally have more computing power and memory than clients;
// configure with WithHeap and WithCPUSpeed. Multi-tenant limits come from
// WithMaxSessions, WithSessionQuota, and WithHealthCheck.
func NewSurrogate(reg *Registry, opts ...Option) *Surrogate {
	o := defaultOptions()
	o.heap = 256 << 20
	o.monitor = false
	for _, opt := range opts {
		opt(&o)
	}
	s := &Surrogate{
		opts:     o,
		reg:      reg,
		sessions: make(map[*remote.Peer]*session),
	}
	s.idle = vm.New(reg, vm.Config{
		Role:         vm.RoleSurrogate,
		HeapCapacity: o.heap,
		CPUSpeed:     o.cpuSpeed,
		Telemetry:    o.telemetry,
		Tracer:       o.tracer,
	})
	s.idle.SetStatelessNativeLocal(o.stateless)
	s.sm = newSurrogateMetrics(o.telemetry, s)
	return s
}

// VM exposes a surrogate VM for heap statistics and clock access. With
// tenants attached it is the oldest admitted session's VM (the natural
// reading for single-tenant deployments); before any attach, the
// surrogate's own idle VM.
func (s *Surrogate) VM() *vm.VM {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.order {
		if sess.admitted.Load() {
			return sess.vm
		}
	}
	if len(s.order) > 0 {
		return s.order[0].vm
	}
	return s.idle
}

// Heap returns surrogate-wide heap statistics: live, garbage, and object
// counts summed across every tenant session, against the surrogate's
// total heap budget.
func (s *Surrogate) Heap() vm.HeapStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heapLocked()
}

func (s *Surrogate) heapLocked() vm.HeapStats {
	if len(s.order) == 0 {
		return s.idle.Heap()
	}
	agg := vm.HeapStats{Capacity: s.opts.heap}
	for _, sess := range s.order {
		h := sess.vm.Heap()
		agg.Live += h.Live
		agg.Garbage += h.Garbage
		agg.Collections += h.Collections
		agg.Objects += h.Objects
	}
	agg.Free = agg.Capacity - agg.Live - agg.Garbage
	if agg.Free < 0 {
		agg.Free = 0
	}
	return agg
}

// Clock returns the simulated clock of the VM that Heap and VM report on.
func (s *Surrogate) Clock() time.Duration { return s.VM().Clock() }

// Sessions returns the number of currently admitted tenant sessions.
func (s *Surrogate) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted
}

// Stats returns the surrogate's session-control counters.
func (s *Surrogate) Stats() SurrogateStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SurrogateStats{
		Active:   s.admitted,
		Admitted: s.admittedTotal,
		Rejected: s.rejectedTotal,
		Shed:     s.shedTotal,
		Evicted:  s.evictedTotal,
		Drained:  s.drainedTotal,
	}
}

// Healthz reports the surrogate's health: the WithHealthCheck probe's
// error while degraded, nil otherwise. Plug it into telemetry.Handler to
// serve /healthz.
func (s *Surrogate) Healthz() error {
	s.mu.Lock()
	closed := s.closed
	hc := s.opts.healthCheck
	s.mu.Unlock()
	if closed {
		return errors.New("aide: surrogate closed")
	}
	if hc != nil {
		return hc()
	}
	return nil
}

// Serve attaches one client over the given transport. It returns
// immediately; the connection is serviced by the peer's worker pool. The
// tenant starts in the lobby: its first work request (or explicit attach
// handshake) runs admission control, and a rejection is a typed wire
// error the client sees as remote.ErrAdmissionRejected or remote.ErrShed.
// A client connection that fails (transport error, timeout escalation) is
// reaped: dropped from the session registry, detached from its VM, and
// closed.
func (s *Surrogate) Serve(t remote.Transport) {
	quota := s.opts.heap
	if s.opts.sessionQuota > 0 {
		quota = s.opts.sessionQuota
	}
	sv := vm.New(s.reg, vm.Config{
		Role:         vm.RoleSurrogate,
		HeapCapacity: quota,
		CPUSpeed:     s.opts.cpuSpeed,
		Tracer:       s.opts.tracer,
	})
	sv.SetStatelessNativeLocal(s.opts.stateless)
	sess := &session{vm: sv, quota: quota}

	ro := s.opts.remoteOptions()
	ro.Gate = func(kind remote.MsgKind) error { return s.gate(sess, kind) }
	ro.SessionInfo = s.occupancy
	ro.OnDown = func(p *remote.Peer, cause error) {
		_ = cause // the peer already logged it via Logf
		// Reap asynchronously: OnDown runs on the peer's own receive
		// loop, which Close joins. The reaper itself joins via s.wg;
		// once Close has flipped the flag it owns the teardown and the
		// reap is redundant.
		s.mu.Lock()
		closed := s.closed
		if !closed {
			s.wg.Add(1)
		}
		s.mu.Unlock()
		if closed {
			return
		}
		go func() {
			defer s.wg.Done()
			s.reap(p)
		}()
	}
	p := remote.NewPeer(sv, t, ro)
	// Snapshot plumbing: incoming pushes either restore a shipped session
	// image into this session's VM (the receiving end of a handoff) or
	// order a fleet-wide drain; pulls serve the speculation path a
	// consistent copy of the session heap.
	p.SetSnapshotHandler(func(method, dest string, img []byte) error {
		switch method {
		case remote.SnapRestore:
			// The image replaces the session heap wholesale, so a restore
			// runs the same admission as a first work request — the gate
			// passed the frames through without seeing the mode.
			if err := s.admit(sess); err != nil {
				return err
			}
			im, err := snapshot.Decode(img)
			if err != nil {
				return err
			}
			return snapshot.Restore(sess.vm, im)
		case remote.SnapDrain:
			// The directive's image bytes are its credential, checked
			// before anything else: an ordinary tenant connection reaches
			// this handler too, and must not be able to order a drain.
			if err := s.authorizeDrain(img); err != nil {
				return err
			}
			return s.drainFrom(dest, p)
		default:
			return fmt.Errorf("aide: surrogate cannot consume snapshot push %q", method)
		}
	})
	p.SetSnapshotSource(func() ([]byte, error) {
		return snapshot.Snapshot(sess.vm).Encode(), nil
	})
	s.mu.Lock()
	if s.closed {
		// The session may have been admitted by an early request racing
		// Close's snapshot; roll the occupancy back before discarding.
		if sess.admitted.Load() {
			s.admitted--
			s.committed -= sess.quota
		}
		s.mu.Unlock()
		if err := p.Close(); err != nil && s.opts.logf != nil {
			s.opts.logf("aide: serve after close: %v", err)
		}
		return
	}
	s.seq++
	sess.seq = s.seq
	sess.peer = p
	s.sessions[p] = sess
	s.order = append(s.order, sess)
	s.mu.Unlock()
}

// gate screens one incoming request for the session (remote.Options.Gate).
// Bookkeeping kinds always pass: probes must answer at capacity so fleet
// placement can still rank a full surrogate, distributed-GC releases must
// apply exactly once no matter the session's fate, and snapshot frames
// carry their own admission — and, for drain directives, the WithDrainKey
// authorization — inside the handler (the gate cannot see the transfer
// mode). A draining session answers every work request with the
// typed redirect; otherwise work kinds require admission, and the first
// one (or an explicit MsgAttach) runs it.
func (s *Surrogate) gate(sess *session, kind remote.MsgKind) error {
	switch kind {
	case remote.MsgPing, remote.MsgPong, remote.MsgInfo, remote.MsgRelease, remote.MsgReleaseBatch,
		remote.MsgSnapshot, remote.MsgSnapshotAck:
		return nil
	}
	if sess.draining.Load() {
		return remote.ErrDrained
	}
	if sess.admitted.Load() {
		return nil
	}
	return s.admit(sess)
}

// admit runs admission control for a lobby session. The decision is
// sticky: a rejected session answers every later request with the same
// typed error, and an admitted one never re-runs the checks. Order
// matters — degraded health sheds before the caps reject, so a degraded
// surrogate reports CodeShed even when it is also full.
func (s *Surrogate) admit(sess *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.rejectErr != nil {
		return sess.rejectErr
	}
	if sess.admitted.Load() {
		return nil
	}
	if s.closed {
		return errors.New("aide: surrogate closed")
	}
	if hc := s.opts.healthCheck; hc != nil {
		if herr := hc(); herr != nil {
			if s.opts.evictOnDegraded {
				// Reclaim capacity from the heaviest tenant; the
				// degraded attach is still shed — eviction relieves
				// pressure for the sessions already running.
				s.evictLocked(1)
			}
			s.shedTotal++
			s.sm.shed.Inc()
			sess.rejectErr = fmt.Errorf("%w: surrogate degraded: %v", remote.ErrShed, herr)
			return sess.rejectErr
		}
	}
	if max := s.opts.maxSessions; max > 0 && s.admitted >= max {
		s.rejectedTotal++
		s.sm.rejected.Inc()
		sess.rejectErr = fmt.Errorf("%w: %d sessions at cap %d", remote.ErrAdmissionRejected, s.admitted, max)
		return sess.rejectErr
	}
	if s.opts.sessionQuota > 0 && s.committed+sess.quota > s.opts.heap {
		s.rejectedTotal++
		s.sm.rejected.Inc()
		sess.rejectErr = fmt.Errorf("%w: committed %dB + quota %dB exceeds heap budget %dB",
			remote.ErrAdmissionRejected, s.committed, sess.quota, s.opts.heap)
		return sess.rejectErr
	}
	sess.admitted.Store(true)
	s.admitted++
	s.committed += sess.quota
	s.admittedTotal++
	s.sm.admitted.Inc()
	return nil
}

// occupancy reports surrogate-wide occupancy for info and attach replies
// (remote.Options.SessionInfo): admitted session count, free bytes out of
// the shared heap budget, and the budget itself — the fleet coordinator's
// placement inputs.
func (s *Surrogate) occupancy() (sessions, freeBytes, capacityBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.heapLocked()
	return int64(s.admitted), h.Free, h.Capacity
}

// EvictSessions evicts up to n admitted sessions to reclaim capacity,
// heaviest live heap first (ties broken toward the newest session, so the
// longest-standing tenant of equal weight survives). Each victim's later
// requests fail with the typed eviction error and its connection closes
// asynchronously; the client sees a disconnect and fails over to local
// execution. It returns the number of sessions evicted.
func (s *Surrogate) EvictSessions(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evictLocked(n))
}

// evictLocked implements eviction under s.mu. Victims are marked, removed
// from the registry, and handed to reaper goroutines — the peer Close
// must not run under s.mu, because its workers may be blocked in
// gate→admit on the same mutex.
func (s *Surrogate) evictLocked(n int) []*session {
	if n <= 0 || s.closed {
		return nil
	}
	cands := make([]*session, 0, len(s.order))
	for _, sess := range s.order {
		if sess.admitted.Load() {
			cands = append(cands, sess)
		}
	}
	// Deterministic eviction order: most live bytes first, newest seq on
	// ties. Live bytes are sampled once so the sort key is stable.
	live := make(map[*session]int64, len(cands))
	for _, sess := range cands {
		live[sess] = sess.vm.Heap().Live
	}
	sort.Slice(cands, func(i, j int) bool {
		if live[cands[i]] != live[cands[j]] {
			return live[cands[i]] > live[cands[j]]
		}
		return cands[i].seq > cands[j].seq
	})
	if n > len(cands) {
		n = len(cands)
	}
	victims := cands[:n]
	for _, v := range victims {
		v.admitted.Store(false)
		v.rejectErr = fmt.Errorf("%w: reclaiming %dB of quota", remote.ErrEvicted, v.quota)
		s.admitted--
		s.committed -= v.quota
		s.evictedTotal++
		s.sm.evicted.Inc()
		delete(s.sessions, v.peer)
		s.removeOrderLocked(v)
		logf := s.opts.logf
		s.wg.Add(1)
		go func(p *remote.Peer, sv *vm.VM) {
			defer s.wg.Done()
			sv.DetachPeer(p.VMIndex())
			if err := p.Close(); err != nil && logf != nil {
				logf("aide: surrogate evict session: %v", err)
			}
		}(v.peer, v.vm)
	}
	return victims
}

// Drain hands every admitted session off, live, to the surrogate at
// dest: each session is quiesced, snapshotted, and the image pushed to
// its own client with the destination address — the client dials dest,
// restores the session there, and atomically re-points its peer slot.
// The tenant observes only a bounded latency bump; calls that land
// mid-handoff are answered with the typed ErrDrained redirect and retry
// against the new home. It returns how many sessions moved. A session
// whose client cannot complete the handoff (push failure, restore
// rejected at dest) resumes in place and is counted in the returned
// error instead.
func (s *Surrogate) Drain(ctx context.Context, dest string) (int, error) {
	return s.drain(ctx, dest, nil)
}

// authorizeDrain validates a wire drain directive's credential (the
// directive frame's image bytes) against the WithDrainKey credential.
// With no key configured every wire directive is refused — local
// Surrogate.Drain remains the only way to order a drain.
func (s *Surrogate) authorizeDrain(key []byte) error {
	want := s.opts.drainKey
	if want == "" {
		return fmt.Errorf("%w: surrogate has no drain key configured", ErrDrainUnauthorized)
	}
	if subtle.ConstantTimeCompare(key, []byte(want)) != 1 {
		return fmt.Errorf("%w: drain key mismatch", ErrDrainUnauthorized)
	}
	return nil
}

// drainFrom services a SnapDrain directive that arrived over the peer
// from (the fleet coordinator's connection). The work is scoped to that
// connection's lifetime, and the directive carrier's own serve slot is
// discounted when quiescing its session.
func (s *Surrogate) drainFrom(dest string, from *remote.Peer) error {
	_, err := s.drain(from.LifeContext(), dest, from)
	return err
}

func (s *Surrogate) drain(ctx context.Context, dest string, from *remote.Peer) (int, error) {
	if dest == "" {
		return 0, errors.New("aide: drain needs a destination address")
	}
	s.mu.Lock()
	cands := make([]*session, 0, len(s.order))
	for _, sess := range s.order {
		if sess.admitted.Load() && !sess.draining.Load() {
			cands = append(cands, sess)
		}
	}
	s.mu.Unlock()
	moved := 0
	var firstErr error
	for _, sess := range cands {
		allow := 0
		if sess.peer == from {
			// The drain directive occupies one serve slot on this very
			// peer; demanding zero in-flight serves would deadlock on our
			// own dispatch.
			allow = 1
		}
		if err := s.drainSession(ctx, sess, dest, allow); err != nil {
			if errors.Is(err, remote.ErrClosed) {
				// The session's own connection died mid-handoff: the client
				// left (teardown racing the drain) and the reaper owns the
				// session. Nothing is stranded, so nothing to report.
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("aide: drain session to %s: %w", dest, err)
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

// drainSession performs one live handoff: flip the session to draining
// (late work requests bounce with ErrDrained), wait for in-flight serves
// to finish so the snapshot is quiescent, ship the image to the client
// with the destination address, and on the client's acknowledgment
// retire the session here. The span duration is the surrogate-side
// blackout: the window in which the tenant had no serving home.
func (s *Surrogate) drainSession(ctx context.Context, sess *session, dest string, allow int) error {
	tr := s.opts.tracer
	var sid uint64
	var start time.Time
	if tr.Enabled() {
		sid = tr.NextID()
		start = time.Now()
	}
	err := s.handoff(ctx, sess, dest, allow)
	if tr.Enabled() {
		tr.Emit(telemetry.Span{
			ID: sid, Kind: telemetry.SpanDrain, Note: "session:" + dest,
			Peer: sess.peer.VMIndex(), Err: err != nil, Start: start, Dur: time.Since(start),
		})
	}
	return err
}

func (s *Surrogate) handoff(ctx context.Context, sess *session, dest string, allow int) error {
	sess.draining.Store(true)
	sess.peer.WaitServeIdle(allow)
	img := snapshot.Snapshot(sess.vm).Encode()
	if err := sess.peer.PushSnapshot(ctx, remote.SnapHandoff, dest, img); err != nil {
		// The client could not re-home the session; let it keep running
		// here rather than strand the tenant.
		sess.draining.Store(false)
		return err
	}
	// The client restored at dest and swapped its slot; retire the
	// session. The gate keeps bouncing stragglers via the captured sess.
	s.mu.Lock()
	if _, ok := s.sessions[sess.peer]; ok {
		delete(s.sessions, sess.peer)
		s.removeOrderLocked(sess)
	}
	if sess.admitted.Load() {
		sess.admitted.Store(false)
		s.admitted--
		s.committed -= sess.quota
	}
	s.drainedTotal++
	s.sm.drained.Inc()
	closed := s.closed
	if !closed {
		s.wg.Add(1)
	}
	logf := s.opts.logf
	s.mu.Unlock()
	if closed {
		return nil // Close owns the teardown
	}
	go func(p *remote.Peer, sv *vm.VM) {
		defer s.wg.Done()
		sv.DetachPeer(p.VMIndex())
		if err := p.Close(); err != nil && logf != nil {
			logf("aide: surrogate drain session: %v", err)
		}
	}(sess.peer, sess.vm)
	return nil
}

func (s *Surrogate) removeOrderLocked(sess *session) {
	for i, q := range s.order {
		if q == sess {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// reap removes a failed client connection. The tenant's session VM dies
// with the session — its adopted objects are unreachable once the peer is
// gone (a real deployment would lease them for reattach) — and the peer
// slot is detached so stubs importing client objects fail fast.
func (s *Surrogate) reap(p *remote.Peer) {
	s.mu.Lock()
	sess := s.sessions[p]
	if sess != nil {
		delete(s.sessions, p)
		s.removeOrderLocked(sess)
		if sess.admitted.Load() {
			sess.admitted.Store(false)
			s.admitted--
			s.committed -= sess.quota
		}
	}
	logf := s.opts.logf
	s.mu.Unlock()
	if sess == nil {
		return // already evicted or closed
	}
	sess.vm.DetachPeer(p.VMIndex())
	if err := p.Close(); err != nil && logf != nil {
		logf("aide: surrogate reap client: %v", err)
	}
}

// ListenAndServe accepts client connections on addr until Close. It
// returns the bound address (useful with ":0") once listening.
func (s *Surrogate) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("aide: surrogate listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("aide: surrogate closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("aide: surrogate already listening")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.Serve(remote.NewConnTransport(conn))
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops listening and closes every tenant session.
func (s *Surrogate) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[*remote.Peer]*session)
	s.order = nil
	s.admitted = 0
	s.committed = 0
	s.mu.Unlock()
	var firstErr error
	if ln != nil {
		if err := ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.wg.Wait()
	for _, sess := range sessions {
		if err := sess.peer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// NewLocalPair wires a client and a surrogate together in process over an
// in-memory transport: the quickest way to stand up a complete platform.
// Close the client (and the surrogate) when done.
func NewLocalPair(reg *Registry, clientOpts, surrogateOpts []Option) (*Client, *Surrogate, error) {
	c := NewClient(reg, clientOpts...)
	s := NewSurrogate(reg, surrogateOpts...)
	ct, st := remote.NewChannelPair()
	s.Serve(st)
	if err := c.Attach(ct); err != nil {
		_ = s.Close()
		_ = c.Close()
		return nil, nil, err
	}
	return c, s, nil
}
