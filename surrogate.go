package aide

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"aide/internal/remote"
	"aide/internal/vm"
)

// Surrogate is the platform on a nearby server that lends its resources to
// clients. A device can perform the role of a surrogate with respect to a
// client even though it may be used independently for other purposes
// (paper §2).
type Surrogate struct {
	opts options
	vm   *vm.VM

	mu     sync.Mutex
	peers  []*remote.Peer
	ln     net.Listener
	closed bool
	// wg joins the accept loop and the asynchronous reap goroutines;
	// Close waits on it so no goroutine outlives the surrogate. Add
	// happens under mu, serialized against Close's closed-flag flip, so
	// it can never race a Wait at zero.
	wg sync.WaitGroup
}

// NewSurrogate builds a surrogate platform over the shared class registry.
// Surrogates generally have more computing power and memory than clients;
// configure with WithHeap and WithCPUSpeed.
func NewSurrogate(reg *Registry, opts ...Option) *Surrogate {
	o := defaultOptions()
	o.heap = 256 << 20
	o.monitor = false
	for _, opt := range opts {
		opt(&o)
	}
	s := &Surrogate{opts: o}
	s.vm = vm.New(reg, vm.Config{
		Role:         vm.RoleSurrogate,
		HeapCapacity: o.heap,
		CPUSpeed:     o.cpuSpeed,
		Telemetry:    o.telemetry,
		Tracer:       o.tracer,
	})
	s.vm.SetStatelessNativeLocal(o.stateless)
	return s
}

// VM exposes the surrogate's VM (heap statistics, clock).
func (s *Surrogate) VM() *vm.VM { return s.vm }

// Heap returns surrogate heap statistics.
func (s *Surrogate) Heap() vm.HeapStats { return s.vm.Heap() }

// Clock returns the surrogate's simulated clock.
func (s *Surrogate) Clock() time.Duration { return s.vm.Clock() }

// Serve attaches one client over the given transport. It returns
// immediately; the connection is serviced by the peer's worker pool. A
// client connection that fails (transport error, timeout escalation) is
// reaped: dropped from the peer list, detached from the VM, and closed.
func (s *Surrogate) Serve(t remote.Transport) {
	ro := s.opts.remoteOptions()
	ro.OnDown = func(p *remote.Peer, cause error) {
		_ = cause // the peer already logged it via Logf
		// Reap asynchronously: OnDown runs on the peer's own receive
		// loop, which Close joins. The reaper itself joins via s.wg;
		// once Close has flipped the flag it owns the teardown and the
		// reap is redundant.
		s.mu.Lock()
		closed := s.closed
		if !closed {
			s.wg.Add(1)
		}
		s.mu.Unlock()
		if closed {
			return
		}
		go func() {
			defer s.wg.Done()
			s.reap(p)
		}()
	}
	p := remote.NewPeer(s.vm, t, ro)
	s.mu.Lock()
	s.peers = append(s.peers, p)
	s.mu.Unlock()
}

// reap removes a failed client connection. The client's objects adopted
// by this surrogate stay in the heap (their owner may reattach; a real
// deployment would lease them), but the stubs importing *client* objects
// are orphaned, so the peer slot is detached to make them fail fast.
func (s *Surrogate) reap(p *remote.Peer) {
	s.mu.Lock()
	for i, q := range s.peers {
		if q == p {
			s.peers = append(s.peers[:i], s.peers[i+1:]...)
			break
		}
	}
	logf := s.opts.logf
	s.mu.Unlock()
	s.vm.DetachPeer(p.VMIndex())
	if err := p.Close(); err != nil && logf != nil {
		logf("aide: surrogate reap client: %v", err)
	}
}

// ListenAndServe accepts client connections on addr until Close. It
// returns the bound address (useful with ":0") once listening.
func (s *Surrogate) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("aide: surrogate listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("aide: surrogate closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("aide: surrogate already listening")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.Serve(remote.NewConnTransport(conn))
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops listening and closes every client connection.
func (s *Surrogate) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	peers := s.peers
	s.peers = nil
	s.mu.Unlock()
	var firstErr error
	if ln != nil {
		if err := ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.wg.Wait()
	for _, p := range peers {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// NewLocalPair wires a client and a surrogate together in process over an
// in-memory transport: the quickest way to stand up a complete platform.
// Close the client (and the surrogate) when done.
func NewLocalPair(reg *Registry, clientOpts, surrogateOpts []Option) (*Client, *Surrogate, error) {
	c := NewClient(reg, clientOpts...)
	s := NewSurrogate(reg, surrogateOpts...)
	ct, st := remote.NewChannelPair()
	s.Serve(st)
	if err := c.Attach(ct); err != nil {
		_ = s.Close()
		return nil, nil, err
	}
	return c, s, nil
}
