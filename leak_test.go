package aide

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain wraps the whole package run in a goroutine-leak check: every
// background goroutine the platform spawns (peer workers and probers,
// disconnect-close handlers, surrogate accept loops and reapers) must
// have joined by the time the tests finish. This is the executable form
// of goroutinecheck's promise — the analyzer proves a join path exists,
// this proves the paths are actually taken.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := settleGoroutines(before); leaked > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines outlived the package tests (started with %d)\n",
				leaked, before)
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, tolerating runtime-internal stragglers (finalizer, netpoll)
// that need a few scheduler rounds to park. Returns the number still
// above baseline after the grace period.
func settleGoroutines(baseline int) int {
	// Idle keep-alive connections from TCP tests hold their goroutines
	// until the transport drops them.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			if n <= baseline {
				return 0
			}
			return n - baseline
		}
		time.Sleep(20 * time.Millisecond)
	}
}
