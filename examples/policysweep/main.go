// Policy sweep: the paper's Figure 7 methodology on one application.
//
// The same recorded Dia trace is repartitioned under multiple triggering
// and partitioning policies (the paper varies the trigger threshold from
// 2% to 50% free, the tolerance from 1 to 3 low-memory reports, and the
// minimum memory to free from 10% to 80%). The remote-execution overhead
// varies widely — the paper's lesson that the system must select policies
// dynamically.
package main

import (
	"fmt"
	"log"
	"sort"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
	"aide/internal/policy"
)

func main() {
	spec, err := apps.ByName("Dia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recording Dia trace...")
	tr, err := apps.Record(spec)
	if err != nil {
		log.Fatal(err)
	}

	base := emulator.Config{
		Mode:           emulator.MemoryMode,
		Link:           netmodel.WaveLAN(),
		ClientSlowdown: 10,
		GCBytesTrigger: 96 << 10,
	}
	origCfg := base
	origCfg.HeapCapacity = spec.RecordHeap
	origCfg.DisableOffload = true
	orig, err := emulator.Run(tr, origCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original execution: %.1fs\n\n", orig.Time.Seconds())

	type outcome struct {
		params   policy.Params
		overhead float64
		oom      bool
	}
	var results []outcome
	for _, p := range policy.SweepSpace() {
		cfg := base
		cfg.HeapCapacity = spec.EmuHeap
		cfg.Params = p
		res, err := emulator.Run(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{p, res.Overhead(orig.Time), res.OOM})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].overhead < results[j].overhead })

	fmt.Println("five best policies:")
	for _, r := range results[:5] {
		fmt.Printf("  %-28s overhead %6.1f%%\n", r.params, r.overhead*100)
	}
	fmt.Println("five worst policies:")
	for _, r := range results[len(results)-5:] {
		note := ""
		if r.oom {
			note = "  (application died)"
		}
		fmt.Printf("  %-28s overhead %6.1f%%%s\n", r.params, r.overhead*100, note)
	}
	initial := policy.InitialParams()
	for _, r := range results {
		if r.params == initial {
			fmt.Printf("\nthe paper's initial policy (%s): %.1f%%\n", r.params, r.overhead*100)
			break
		}
	}
	fmt.Printf("best-to-initial spread demonstrates why policy selection must be dynamic (paper §6).\n")
}
