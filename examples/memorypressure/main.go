// Memory pressure: the paper's §5.1 headline scenario, live.
//
// JavaNote (a text editor loading a 600 KB file) needs more memory than
// the client's 6 MiB Java heap. On an unmodified VM the application dies
// with an out-of-memory error; on the AIDE platform the low-memory trigger
// fires, the execution graph is partitioned with the modified MINCUT
// heuristic, and most of the document is transparently offloaded to the
// surrogate — the application completes.
package main

import (
	"errors"
	"fmt"
	"log"

	"aide"
	"aide/internal/apps"
	"aide/internal/vm"
)

func main() {
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		log.Fatal(err)
	}
	reg, driver, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Act 1: the unmodified VM fails.
	fmt.Printf("JavaNote on an unmodified %d MiB VM... ", spec.EmuHeap>>20)
	plain := vm.New(reg, vm.Config{HeapCapacity: spec.EmuHeap})
	if err := driver(plain.NewThread()); errors.Is(err, vm.ErrOutOfMemory) {
		fmt.Println("out of memory (as the paper reports).")
	} else {
		fmt.Printf("unexpected result: %v\n", err)
	}

	// Act 2: the same heap on the distributed platform.
	reg2, driver2, err := spec.Build() // fresh registry/driver state
	if err != nil {
		log.Fatal(err)
	}
	client, surrogate, err := aide.NewLocalPair(reg2,
		[]aide.Option{aide.WithHeap(spec.EmuHeap), aide.WithLink(aide.WaveLAN())},
		nil,
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	fmt.Printf("JavaNote on the platform with the same heap... ")
	if err := driver2(client.Thread()); err != nil {
		log.Fatalf("failed despite offloading: %v", err)
	}
	fmt.Println("completed.")

	reports, _ := client.Offloads()
	for i, r := range reports {
		fmt.Printf("  offload #%d: %d objects, %.0f KB (%.0f%% of the heap), %d classes moved\n",
			i+1, r.Objects, float64(r.Bytes)/1024, r.FreedFraction*100, len(r.Classes))
	}
	fmt.Printf("  client heap after: %.2f MiB live; surrogate hosts %.2f MiB\n",
		float64(client.Heap().Live)/(1<<20), float64(surrogate.Heap().Live)/(1<<20))
	fmt.Printf("  simulated client time %.2fs (WaveLAN remote costs included)\n",
		client.Clock().Seconds())
}
