// CPU offload: the paper's §5.2 study on one application.
//
// Voxel (a fractal landscape generator) runs on an emulated handheld
// client with a surrogate 3.5× faster across a WaveLAN link. Offloading
// naively is *slower* than staying local — native math functions route
// back to the client and whole heightmap arrays are stranded on one side
// — but the two §5.2 enhancements (stateless natives execute where
// invoked; arrays follow their dominant user per object) turn offloading
// into a real win.
package main

import (
	"fmt"
	"log"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
)

func main() {
	spec, err := apps.ByName("Voxel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recording Voxel trace...")
	tr, err := apps.Record(spec)
	if err != nil {
		log.Fatal(err)
	}

	base := emulator.Config{
		Mode:             emulator.CPUMode,
		HeapCapacity:     spec.RecordHeap,
		Link:             netmodel.WaveLAN(),
		SurrogateSpeedup: 3.5,
		ClientSlowdown:   apps.VoxelClientSlowdown,
	}
	origCfg := base
	origCfg.DisableOffload = true
	orig, err := emulator.Run(tr, origCfg)
	if err != nil {
		log.Fatal(err)
	}
	base.ReevalEvery = orig.Time / 8

	show := func(label string, stateless, array, forced bool) {
		cfg := base
		cfg.StatelessNativeLocal = stateless
		cfg.ArrayGranularity = array
		cfg.ForceCPUOffload = forced
		res, err := emulator.Run(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		delta := 100 * (float64(res.Time)/float64(orig.Time) - 1)
		fmt.Printf("%-22s %8.0fs (%+5.1f%%)  remote: %d invocations, %d accesses\n",
			label, res.Time.Seconds(), delta, res.RemoteInvocations, res.RemoteAccesses)
	}

	fmt.Printf("%-22s %8.0fs\n", "original (local only)", orig.Time.Seconds())
	show("offload, no tricks", false, false, true)
	show("+ stateless natives", true, false, true)
	show("+ array granularity", false, true, true)
	show("both (policy-driven)", true, true, false)
}
