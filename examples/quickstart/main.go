// Quickstart: stand up a complete distributed platform in one process,
// offload an application object to the surrogate, and keep calling it
// transparently.
package main

import (
	"fmt"
	"log"
	"time"

	"aide"
)

func main() {
	// 1. Define the application's classes — the stand-in for Java
	//    bytecode, shared by both VMs. The GUI class has a native method,
	//    so it is pinned to the client device.
	reg := aide.NewRegistry()
	mustRegister(reg, aide.ClassSpec{
		Name: "Screen",
		Methods: []aide.MethodSpec{{
			Name:   "draw",
			Native: true,
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(100 * time.Microsecond)
				return aide.Nil(), nil
			},
		}},
	})
	mustRegister(reg, aide.ClassSpec{
		Name:   "Document",
		Fields: []string{"words"},
		Methods: []aide.MethodSpec{{
			Name: "append",
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(50 * time.Microsecond)
				cur, err := th.GetField(self, "words")
				if err != nil {
					return aide.Nil(), err
				}
				n := cur.I + args[0].I
				return aide.Int(n), th.SetField(self, "words", aide.Int(n))
			},
		}},
	})

	// 2. Create the platform: a constrained client plus a surrogate with
	//    3.5× the CPU, wired together in process.
	client, surrogate, err := aide.NewLocalPair(reg,
		[]aide.Option{aide.WithHeap(1 << 20), aide.WithLink(aide.WaveLAN())},
		[]aide.Option{aide.WithCPUSpeed(3.5)},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	// 3. Run application code on the client.
	th := client.Thread()
	doc, err := th.New("Document", 600<<10) // a 600 KB document
	if err != nil {
		log.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", aide.Int(100)); err != nil {
		log.Fatal(err)
	}

	// 4. Offload: the platform snapshots the execution graph, runs the
	//    modified MINCUT heuristic, and migrates the chosen classes.
	rep, err := client.Offload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offloaded %d objects (%d KB) across classes %v\n",
		rep.Objects, rep.Bytes/1024, rep.Classes)

	// 5. The same invocation now transparently crosses the network.
	v, err := th.Invoke(doc, "append", aide.Int(23))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document now has %d words (state survived migration)\n", v.I)
	fmt.Printf("surrogate hosts %.1f KB\n", float64(surrogate.Heap().Live)/1024)
	fmt.Printf("client simulated clock: %v (includes WaveLAN costs)\n", client.Clock().Round(time.Microsecond))
}

// mustRegister registers a class or aborts the example; class-spec errors
// here are programming mistakes, not runtime conditions.
func mustRegister(reg *aide.Registry, spec aide.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		log.Fatalf("register class: %v", err)
	}
}
