// Multiple surrogates: the paper's §2 vision that "if the necessary
// resources for a client are not available at the closest surrogate,
// multiple surrogates could be used by the client". A client attaches two
// surrogates; the partitioner spreads offloaded classes across them by
// available memory, invocations transparently reach whichever surrogate
// hosts each object, and recall brings everything home.
package main

import (
	"fmt"
	"log"
	"time"

	"aide"
)

func registry() *aide.Registry {
	reg := aide.NewRegistry()
	mustRegister(reg, aide.ClassSpec{
		Name: "Input",
		Methods: []aide.MethodSpec{{
			Name:   "poll",
			Native: true,
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(10 * time.Microsecond)
				return aide.Int(1), nil
			},
		}},
	})
	for _, name := range []string{"Index", "Blob"} {
		name := name
		mustRegister(reg, aide.ClassSpec{
			Name:   name,
			Fields: []string{"next", "n"},
			Methods: []aide.MethodSpec{{
				Name: "bump",
				Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
					cur, err := th.GetField(self, "n")
					if err != nil {
						return aide.Nil(), err
					}
					return aide.Int(cur.I + 1), th.SetField(self, "n", aide.Int(cur.I+1))
				},
			}},
		})
	}
	return reg
}

func main() {
	reg := registry()
	var addrs []string
	var surrogates []*aide.Surrogate
	for i := 0; i < 2; i++ {
		s := aide.NewSurrogate(reg, aide.WithHeap(4<<20))
		addr, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		surrogates = append(surrogates, s)
		addrs = append(addrs, addr)
	}

	client := aide.NewClient(reg, aide.WithHeap(2<<20), aide.WithLink(aide.WaveLAN()))
	defer client.Close()
	for _, addr := range addrs {
		if err := client.AttachTCP(addr); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("attached %d surrogates\n", client.Surrogates())

	th := client.Thread()
	index, err := th.New("Index", 700<<10)
	if err != nil {
		log.Fatal(err)
	}
	client.VM().SetRoot("index", index)
	blob, err := th.New("Blob", 700<<10)
	if err != nil {
		log.Fatal(err)
	}
	client.VM().SetRoot("blob", blob)
	for _, id := range []aide.ObjectID{index, blob} {
		if _, err := th.Invoke(id, "bump"); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := client.Offload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offloaded %v (%d KB total)\n", rep.Classes, rep.Bytes/1024)
	for i, s := range surrogates {
		fmt.Printf("  surrogate %d hosts %4.0f KB\n", i, float64(s.Heap().Live)/1024)
	}

	// Both objects keep working, wherever they landed.
	for _, id := range []aide.ObjectID{index, blob} {
		if _, err := th.Invoke(id, "bump"); err != nil {
			log.Fatal(err)
		}
	}

	n, _, err := client.Recall(rep.Classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recalled %d objects; client live again: %.0f KB\n",
		n, float64(client.Heap().Live)/1024)
}

// mustRegister registers a class or aborts the example; class-spec errors
// here are programming mistakes, not runtime conditions.
func mustRegister(reg *aide.Registry, spec aide.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		log.Fatalf("register class: %v", err)
	}
}
