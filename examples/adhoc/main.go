// Ad-hoc platform creation and teardown (paper §2): a client discovers a
// surrogate, probes it, forms a distributed platform over TCP, offloads
// under pressure, and tears the platform down — all within one process
// here, but over a real network socket.
package main

import (
	"fmt"
	"log"
	"time"

	"aide"
)

func registry() *aide.Registry {
	reg := aide.NewRegistry()
	mustRegister(reg, aide.ClassSpec{
		Name: "Sensor",
		Methods: []aide.MethodSpec{{
			Name:   "read",
			Native: true, // hardware access: pinned to the device
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(20 * time.Microsecond)
				return aide.Int(42), nil
			},
		}},
	})
	mustRegister(reg, aide.ClassSpec{
		Name:   "History",
		Fields: []string{"n"},
		Methods: []aide.MethodSpec{{
			Name: "log",
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(30 * time.Microsecond)
				cur, err := th.GetField(self, "n")
				if err != nil {
					return aide.Nil(), err
				}
				return aide.Nil(), th.SetField(self, "n", aide.Int(cur.I+1))
			},
		}},
	})
	mustRegister(reg, aide.ClassSpec{Name: "Archive", Fields: []string{"next"}})
	return reg
}

func main() {
	reg := registry()

	// A surrogate appears in the environment.
	surrogate := aide.NewSurrogate(reg, aide.WithCPUSpeed(3.5))
	addr, err := surrogate.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer surrogate.Close()
	fmt.Printf("surrogate up at %s\n", addr)

	// The constrained device forms the platform ad hoc.
	client := aide.NewClient(reg,
		aide.WithHeap(128<<10),
		aide.WithLink(aide.WaveLAN()),
		aide.WithPolicy(aide.PolicyParams{TriggerFreeFraction: 0.10, Tolerance: 2, MinFreeFraction: 0.20}),
	)
	if err := client.AttachTCP(addr); err != nil {
		log.Fatal(err)
	}
	if err := client.Ping(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("platform formed (latency probe ok)")

	// The device logs sensor readings; archives accumulate past the tiny
	// heap, and the platform offloads them automatically.
	th := client.Thread()
	hist, err := th.New("History", 1024)
	if err != nil {
		log.Fatal(err)
	}
	client.VM().SetRoot("hist", hist)
	var prev aide.ObjectID
	for i := 0; i < 200; i++ {
		if _, err := th.Invoke(hist, "log"); err != nil {
			log.Fatal(err)
		}
		rec, err := th.New("Archive", 2048)
		if err != nil {
			log.Fatalf("archive %d: %v", i, err)
		}
		if prev != aide.InvalidObject {
			if err := th.SetField(rec, "next", aide.RefOf(prev)); err != nil {
				log.Fatal(err)
			}
		}
		client.VM().SetRoot("archive", rec)
		prev = rec
		th.ClearTemps()
	}

	reports, _ := client.Offloads()
	fmt.Printf("%d automatic offload(s); surrogate now holds %.0f KB\n",
		len(reports), float64(surrogate.Heap().Live)/1024)

	// Done in this locale: tear the platform down.
	if err := client.Detach(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("platform torn down")
}

// mustRegister registers a class or aborts the example; class-spec errors
// here are programming mistakes, not runtime conditions.
func mustRegister(reg *aide.Registry, spec aide.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		log.Fatalf("register class: %v", err)
	}
}
